package rmcrt

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/metrics"
)

// assertBitwiseEqual fails unless a and b hold exactly the same bits
// over box.
func assertBitwiseEqual(t *testing.T, box grid.Box, a, b *field.CC[float64], label string) {
	t.Helper()
	box.ForEach(func(c grid.IntVector) {
		if av, bv := a.At(c), b.At(c); av != bv {
			t.Fatalf("%s: divQ differs at %v: %v vs %v", label, c, av, bv)
		}
	})
}

// TestTileEngineBitwiseVsSeed proves the tentpole's correctness claim:
// the tile-scheduled engine reproduces the frozen seed engine's divQ
// bit for bit, on the single-level benchmark, under varied options.
func TestTileEngineBitwiseVsSeed(t *testing.T) {
	for _, tc := range []struct {
		name string
		mod  func(o *Options)
	}{
		{"default", func(o *Options) {}},
		{"stratified", func(o *Options) { o.Stratified = true }},
		{"greyWallsReflecting", func(o *Options) {
			o.WallEmissivity = 0.7
			o.WallSigmaT4 = 0.4
			o.Reflections = true
		}},
		{"scattering", func(o *Options) { o.ScatterCoeff = 0.5 }},
		{"tile3", func(o *Options) { o.TileSize = 3 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, _, err := NewBenchmarkDomain(12)
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			opts.NRays = 6
			tc.mod(&opts)
			region := d.finest().ROI

			want, err := seedSolveRegion(d, region, &opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := d.SolveRegion(region, &opts)
			if err != nil {
				t.Fatal(err)
			}
			assertBitwiseEqual(t, region, want, got, "tile vs seed")
		})
	}
}

// TestTileEngineBitwiseVsSeedMultiLevel extends the proof to the
// multi-level walk (fine patch + coarse radiation level).
func TestTileEngineBitwiseVsSeedMultiLevel(t *testing.T) {
	g, mk, err := NewMultiLevelBenchmark(16, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.NRays = 5
	for _, p := range g.Levels[1].Patches {
		d, err := mk(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := seedSolveRegion(d, p.Cells, &opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.SolveRegion(p.Cells, &opts)
		if err != nil {
			t.Fatal(err)
		}
		assertBitwiseEqual(t, p.Cells, want, got, "multi-level tile vs seed")
	}
}

// TestBitwiseAcrossGOMAXPROCS runs the same solve at GOMAXPROCS 1, 4
// and 16 and demands bit-identical divQ — the decomposition-invariance
// guarantee the per-cell RNG streams buy, now at tile granularity.
func TestBitwiseAcrossGOMAXPROCS(t *testing.T) {
	d, _, err := NewBenchmarkDomain(12)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.NRays = 6
	region := d.finest().ROI

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	var ref *field.CC[float64]
	for _, procs := range []int{1, 4, 16} {
		runtime.GOMAXPROCS(procs)
		out, err := d.SolveRegion(region, &opts)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = out
			continue
		}
		assertBitwiseEqual(t, region, ref, out, "GOMAXPROCS sweep")
	}
}

// TestThinRegionParallelism is the scheduling half of the tentpole: a
// region one cell thick in X serialized under the seed x-slab engine;
// the tile engine must still fan out, and the parallel result must be
// bit-identical to the serial one.
func TestThinRegionParallelism(t *testing.T) {
	// 1×64×64 = 4096 cells, Extent().X == 1.
	d, _, err := NewBenchmarkDomain(64)
	if err != nil {
		t.Fatal(err)
	}
	region := grid.NewBox(grid.IV(0, 0, 0), grid.IV(1, 64, 64))
	if region.Extent().X != 1 || region.Volume() < 4096 {
		t.Fatalf("bad test region %v", region)
	}
	opts := DefaultOptions()
	opts.NRays = 2

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(1)
	serial, st1, err := d.solveRegionTiled(context.Background(), region, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if st1.workers != 1 {
		t.Fatalf("GOMAXPROCS=1 used %d workers", st1.workers)
	}

	runtime.GOMAXPROCS(4)
	par, st4, err := d.solveRegionTiled(context.Background(), region, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if st4.workers <= 1 {
		t.Fatalf("thin-in-X region used %d workers at GOMAXPROCS=4; the x-slab clamp is back", st4.workers)
	}
	if st4.tiles < 2 {
		t.Fatalf("thin-in-X region decomposed into %d tiles", st4.tiles)
	}
	assertBitwiseEqual(t, region, serial, par, "thin region serial vs parallel")
}

// racyContext models the cancellation race the seed engine mishandled:
// Done() is already closed (a worker will observe cancellation) but
// Err() still reports nil — legal per the context contract only in
// adversarial interleavings, which is exactly when SolveRegionCtx used
// to return (nil, nil).
type racyContext struct{ done chan struct{} }

func (r *racyContext) Deadline() (time.Time, bool) { return time.Time{}, false }
func (r *racyContext) Done() <-chan struct{}       { return r.done }
func (r *racyContext) Err() error                  { return nil }
func (r *racyContext) Value(any) any               { return nil }

// TestCancelledNeverReturnsNilNil is the regression test for the
// (nil, nil) bug: with a context whose Done is closed but whose Err
// races to nil, the solve must still return a non-nil error.
func TestCancelledNeverReturnsNilNil(t *testing.T) {
	d, _, err := NewBenchmarkDomain(12)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.NRays = 2
	ctx := &racyContext{done: make(chan struct{})}
	close(ctx.done)

	out, err := d.SolveRegionCtx(ctx, d.finest().ROI, &opts)
	if out != nil {
		t.Fatal("cancelled solve returned a result")
	}
	if err == nil {
		t.Fatal("cancelled solve returned (nil, nil)")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled solve returned %v, want context.Canceled", err)
	}
}

// TestCountersMatchSeed checks the per-tile merge loses nothing: after
// identical solves, the tile engine's Steps/Rays equal the seed
// engine's per-step atomics exactly.
func TestCountersMatchSeed(t *testing.T) {
	opts := DefaultOptions()
	opts.NRays = 4

	dSeed, _, err := NewBenchmarkDomain(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seedSolveRegion(dSeed, dSeed.finest().ROI, &opts); err != nil {
		t.Fatal(err)
	}

	dTile, _, err := NewBenchmarkDomain(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dTile.SolveRegion(dTile.finest().ROI, &opts); err != nil {
		t.Fatal(err)
	}

	if s, w := dTile.Steps.Load(), dSeed.Steps.Load(); s != w {
		t.Errorf("Steps = %d, seed counted %d", s, w)
	}
	if r, w := dTile.Rays.Load(), dSeed.Rays.Load(); r != w {
		t.Errorf("Rays = %d, seed counted %d", r, w)
	}
	if dTile.Rays.Load() == 0 || dTile.Steps.Load() == 0 {
		t.Error("counters did not advance")
	}
}

// TestTraceMetricsFamily exercises the per-tile metrics merge: tile
// count, ray/step totals and one timing observation per tile.
func TestTraceMetricsFamily(t *testing.T) {
	d, _, err := NewBenchmarkDomain(12)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	d.Metrics = NewTraceMetrics(reg)
	opts := DefaultOptions()
	opts.NRays = 2
	opts.TileSize = 6

	region := d.finest().ROI
	out, stats, err := d.solveRegionTiled(context.Background(), region, &opts)
	if err != nil || out == nil {
		t.Fatalf("solve failed: %v", err)
	}
	wantTiles := int64(8) // (12/6)³
	if int64(stats.tiles) != wantTiles {
		t.Fatalf("stats.tiles = %d, want %d", stats.tiles, wantTiles)
	}
	if got := d.Metrics.Tiles.Value(); got != wantTiles {
		t.Errorf("tiles counter = %d, want %d", got, wantTiles)
	}
	if got := d.Metrics.TileSeconds.Count(); got != wantTiles {
		t.Errorf("tile-seconds observations = %d, want %d", got, wantTiles)
	}
	if got, want := d.Metrics.Rays.Value(), d.Rays.Load(); got != want {
		t.Errorf("rays counter = %d, Domain.Rays = %d", got, want)
	}
	if got, want := d.Metrics.Steps.Value(), d.Steps.Load(); got != want {
		t.Errorf("steps counter = %d, Domain.Steps = %d", got, want)
	}
}

// TestTileSizeInvariance checks results do not depend on the tile edge
// — it is scheduling only.
func TestTileSizeInvariance(t *testing.T) {
	d, _, err := NewBenchmarkDomain(10)
	if err != nil {
		t.Fatal(err)
	}
	region := d.finest().ROI
	var ref *field.CC[float64]
	for _, tile := range []int{1, 3, 7, 10, 64} {
		opts := DefaultOptions()
		opts.NRays = 3
		opts.TileSize = tile
		out, err := d.SolveRegion(region, &opts)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = out
			continue
		}
		assertBitwiseEqual(t, region, ref, out, "tile-size sweep")
	}
}

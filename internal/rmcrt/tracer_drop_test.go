package rmcrt

import (
	"math"
	"testing"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/mathutil"
)

// Regression coverage for the level-drop/opaque-cell interaction.
//
// When a ray leaves the fine ROI on axis ax and drops to the coarse
// level, the opaque check that follows reuses ax to pick the reflected
// face. The axis itself is correct — the surface the ray crossed is
// the fine ROI face, perpendicular to ax — but the restart cell used
// to be wrong when the fine ROI face does not coincide with a coarse
// cell face: the drop lands *strictly inside* an opaque coarse cell,
// and stepping a whole coarse cell back along ax teleported the march
// into a cell that does not contain the reflection point, silently
// mis-attributing about one coarse cell's worth of optical path.
//
// These tests pin both cases with hand-computed expected intensities:
// the straddling drop (reflect in place) and the face-aligned drop
// (classic step-back restart, unchanged behavior).

// dropDomain builds a unit-cube two-level domain: coarse 4³ (dx 0.25),
// fine 8³ (dx 0.125), fine ROI truncated at x < roiHiX so rays going +x
// drop mid-domain, with the coarse x-column opaqueX (all y, z) marked
// Intrusion. Property fields are distinct per cell column so any
// mis-attributed segment changes the answer.
func dropDomain(t *testing.T, roiHiX, opaqueX int) *Domain {
	t.Helper()
	g, err := grid.New(
		mathutil.V3(0, 0, 0), mathutil.V3(1, 1, 1),
		grid.Spec{Resolution: grid.Uniform(4), PatchSize: grid.Uniform(4)},
		grid.Spec{Resolution: grid.Uniform(8), PatchSize: grid.Uniform(8)},
	)
	if err != nil {
		t.Fatal(err)
	}
	coarse, fine := g.Levels[0], g.Levels[1]

	fa := field.NewCC[float64](fine.IndexBox())
	fs := field.NewCC[float64](fine.IndexBox())
	fc := field.NewCC[field.CellType](fine.IndexBox())
	fa.FillFunc(func(c grid.IntVector) float64 { return 0.2 + 0.05*float64(c.X) })
	fs.FillFunc(func(c grid.IntVector) float64 { return 0.5 + 0.125*float64(c.X) })
	fc.Fill(field.Flow)

	ca := field.NewCC[float64](coarse.IndexBox())
	cs := field.NewCC[float64](coarse.IndexBox())
	cc := field.NewCC[field.CellType](coarse.IndexBox())
	ca.FillFunc(func(c grid.IntVector) float64 { return 0.1 * float64(c.X+1) })
	cs.FillFunc(func(c grid.IntVector) float64 { return 2 + float64(c.X) })
	cc.FillFunc(func(c grid.IntVector) field.CellType {
		if c.X == opaqueX {
			return field.Intrusion
		}
		return field.Flow
	})

	d := &Domain{Levels: []LevelData{
		{Level: coarse, ROI: coarse.IndexBox(), Abskg: ca, SigmaT4OverPi: cs, CellType: cc},
		{Level: fine, ROI: grid.NewBox(grid.IV(0, 0, 0), grid.IV(roiHiX, 8, 8)), Abskg: fa, SigmaT4OverPi: fs, CellType: fc},
	}}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// segAccum mirrors the tracer's per-segment arithmetic, in the same
// operation order, so expected values match to float64 rounding.
type segAccum struct {
	tau, trans, sumI float64
}

func (a *segAccum) seg(kappa, sig, ds float64) {
	tauNew := a.tau + kappa*ds
	transNew := math.Exp(-tauNew)
	a.sumI += sig * (a.trans - transNew)
	a.tau, a.trans = tauNew, transNew
}

func (a *segAccum) surface(eps, sig float64) {
	a.sumI += eps * sig * a.trans
	a.trans *= 1 - eps
	a.tau -= math.Log(1 - eps)
}

func dropOpts() Options {
	opts := DefaultOptions()
	opts.NRays = 1
	opts.Threshold = 1e-9
	opts.Reflections = true
	opts.WallEmissivity = 0.5
	opts.MaxReflections = 1
	return opts
}

// Straddling case: fine ROI ends at x-index 5, so its face sits at
// x = 0.625 — the middle of opaque coarse cell 2 ([0.5, 0.75)). The
// correct reflection restarts *in* cell 2 and re-traverses its
// remaining 0.125 of wall material; the old code restarted in cell 1
// while standing at x = 0.625, mis-attributing a 0.375-long segment to
// cell 1's properties.
func TestDropOntoStraddlingOpaqueCellReflection(t *testing.T) {
	d := dropDomain(t, 5, 2)
	opts := dropOpts()

	// +x ray from the center of fine cell (0,4,4): y and z never cross
	// a face, so the entire march is the x-column.
	origin := d.Levels[1].Level.CellCenter(grid.IV(0, 4, 4))
	got := d.TraceRay(origin, mathutil.V3(1, 0, 0), nil, &opts)

	fineK := func(x int) float64 { return 0.2 + 0.05*float64(x) }
	fineS := func(x int) float64 { return 0.5 + 0.125*float64(x) }
	coarseK := func(x int) float64 { return 0.1 * float64(x+1) }
	coarseS := func(x int) float64 { return 2 + float64(x) }

	var a segAccum
	a.trans = 1
	a.seg(fineK(0), fineS(0), 0.0625) // center of cell 0 to its face
	for x := 1; x < 5; x++ {
		a.seg(fineK(x), fineS(x), 0.125)
	}
	// Drop at x = 0.625 into opaque coarse cell 2: surface emission,
	// then the reflected ray re-crosses cell 2's remaining thickness
	// and marches back out through cells 1 and 0 to the x=0 wall
	// (cold, so the wall term vanishes).
	a.surface(opts.WallEmissivity, coarseS(2))
	a.seg(coarseK(2), coarseS(2), 0.125)
	a.seg(coarseK(1), coarseS(1), 0.25)
	a.seg(coarseK(0), coarseS(0), 0.25)

	if math.Abs(got-a.sumI) > 1e-12*math.Abs(a.sumI) {
		t.Fatalf("straddling drop reflection: got %.17g, want %.17g (diff %g)",
			got, a.sumI, got-a.sumI)
	}
}

// Face-aligned case: fine ROI ends at x-index 6, so its face x = 0.75
// coincides with the face of opaque coarse cell 3. The classic
// step-back restart (reflect from cell 2) is correct and must be
// unchanged.
func TestDropOntoFaceAlignedOpaqueCellReflection(t *testing.T) {
	d := dropDomain(t, 6, 3)
	opts := dropOpts()

	origin := d.Levels[1].Level.CellCenter(grid.IV(0, 4, 4))
	got := d.TraceRay(origin, mathutil.V3(1, 0, 0), nil, &opts)

	fineK := func(x int) float64 { return 0.2 + 0.05*float64(x) }
	fineS := func(x int) float64 { return 0.5 + 0.125*float64(x) }
	coarseK := func(x int) float64 { return 0.1 * float64(x+1) }
	coarseS := func(x int) float64 { return 2 + float64(x) }

	var a segAccum
	a.trans = 1
	a.seg(fineK(0), fineS(0), 0.0625)
	for x := 1; x < 6; x++ {
		a.seg(fineK(x), fineS(x), 0.125)
	}
	// Drop lands exactly on cell 3's entry face: surface emission, then
	// the reflected ray restarts in flow cell 2 and marches back to the
	// cold x=0 wall.
	a.surface(opts.WallEmissivity, coarseS(3))
	a.seg(coarseK(2), coarseS(2), 0.25)
	a.seg(coarseK(1), coarseS(1), 0.25)
	a.seg(coarseK(0), coarseS(0), 0.25)

	if math.Abs(got-a.sumI) > 1e-12*math.Abs(a.sumI) {
		t.Fatalf("face-aligned drop reflection: got %.17g, want %.17g (diff %g)",
			got, a.sumI, got-a.sumI)
	}
}

package rmcrt

import (
	"fmt"
	"math"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/mathutil"
)

// Wavefront-batched coherent ray marching.
//
// The scalar engine traces each ray to completion before starting the
// next: per DDA step it pays the Vec3 Component/WithComponent switch
// dispatch, re-derives the level context, and walks a call chain the
// compiler cannot flatten. This file restructures the tile solve around
// a struct-of-arrays ray batch held in a per-worker arena: a chunk of
// cells generates all of its rays up front (in the exact per-cell RNG
// draw order of solveCell, so the default mode stays bitwise identical
// to the seed engine), then the batch is marched in passes over the
// packed tables. The hot loop works on flat scalar locals — axis
// selection, segment accumulation, and the stride advance are branchy
// scalar code with no struct accessors — with the per-level table slice
// and ROI bounds hoisted into a levelCtx. Rays that terminate are
// compacted out of the active list between passes, so late passes stay
// dense over the few long-lived rays.
//
// Slow events — wall hits, level drops, opaque cells, reflections — are
// handled out of line in laneTail, which deliberately reuses the same
// Vec3/grid helpers as traceRay so the arithmetic is the same
// instruction sequence. Per-ray float accumulation order is unchanged
// (each lane owns its sumI; cell sums reduce over lanes in ray order),
// which is what makes the batched default bitwise identical to seedref
// at any worker count, tile size, or pass budget.
//
// Scattering redirects rays with trace-time RNG draws interleaved into
// the per-cell stream, which a pre-generated batch cannot reproduce;
// ScatterCoeff > 0 therefore falls back to the scalar per-cell kernel
// (scalarKernel below), preserving bitwise identity there too.
//
// On top of the batch layer sits the adaptive ray budget mode (ARC-
// style, Hartley & Ricotti): cells start at AdaptiveMinRays rays, and
// only cells whose running (Welford) relative standard error still
// exceeds AdaptiveRelTol get topped up in doubling waves, capped at
// AdaptiveMaxRays. All draws stay on the per-cell stream in ray order
// and the stopping rule is a pure function of the cell's own ray
// values, so adaptive results are deterministic at any worker count or
// tile size (though not bitwise comparable to a fixed-ray solve).

// defaultMaxBatchRays bounds the rays resident in a worker's batch
// arena: 2048 lanes × ~230 B of SoA state ≈ 470 KiB, streaming-friendly
// and well inside L2 alongside the packed tables.
const defaultMaxBatchRays = 2048

// defaultPassSteps is the per-lane step budget of one march pass. A
// full batch costs at most lanes × passSteps ≈ 1M steps (~25 ms)
// between cancellation polls; typical rays extinguish in well under
// 512 steps, so most lanes terminate (and compact away) in pass one.
const defaultPassSteps = 512

// levelCtx is one level's march context with everything the hot loop
// reads hoisted to flat fields: the packed record slice and the ROI
// bounds as scalar ints (the bounds check compiles to six compares, no
// method calls).
type levelCtx struct {
	lvl           *grid.Level
	pl            *PackedLevel
	recs          []PackedCell
	lo0, lo1, lo2 int
	hi0, hi1, hi2 int
}

// batchBuf is the struct-of-arrays ray state: lane l's ray is spread
// across the arrays at index l. Lanes never move — the active set is an
// index list compacted between passes — so a cell's rays stay at their
// generation-order indices and reduce in ray order.
type batchBuf struct {
	ox, oy, oz    []float64 // ray origin
	dx, dy, dz    []float64 // ray direction
	tmx, tmy, tmz []float64 // DDA tMax per axis
	tdx, tdy, tdz []float64 // DDA tDelta per axis
	cx, cy, cz    []int     // current cell
	sx, sy, sz    []int     // step direction per axis (−1/0/+1)
	idx           []int     // flat packed-record index
	d0, d1, d2    []int     // per-axis flat-index stride deltas
	li            []int     // current level index
	tau           []float64 // accumulated optical thickness
	trans         []float64 // e^{−τ}
	tcur          []float64 // distance travelled along the ray
	sum           []float64 // accumulated incoming intensity
	refl          []int     // reflections so far
	left          []int     // remaining step budget (maxSteps)
}

func (b *batchBuf) grow(n int) {
	if cap(b.ox) >= n {
		return
	}
	b.ox, b.oy, b.oz = make([]float64, n), make([]float64, n), make([]float64, n)
	b.dx, b.dy, b.dz = make([]float64, n), make([]float64, n), make([]float64, n)
	b.tmx, b.tmy, b.tmz = make([]float64, n), make([]float64, n), make([]float64, n)
	b.tdx, b.tdy, b.tdz = make([]float64, n), make([]float64, n), make([]float64, n)
	b.cx, b.cy, b.cz = make([]int, n), make([]int, n), make([]int, n)
	b.sx, b.sy, b.sz = make([]int, n), make([]int, n), make([]int, n)
	b.idx = make([]int, n)
	b.d0, b.d1, b.d2 = make([]int, n), make([]int, n), make([]int, n)
	b.li = make([]int, n)
	b.tau, b.trans = make([]float64, n), make([]float64, n)
	b.tcur, b.sum = make([]float64, n), make([]float64, n)
	b.refl, b.left = make([]int, n), make([]int, n)
}

// batchKernel is the per-worker wavefront tracer. One kernel serves
// many tiles; its arena is reused across chunks.
type batchKernel struct {
	d   *Domain
	ld  *LevelData
	tc  traceCtx
	cnt *traceCounters

	lvls      []levelCtx
	buf       batchBuf
	active    []int
	laneCap   int
	passSteps int

	// spec, when non-nil, carries K spectral bands per lane over the
	// shared geometric cursors (spectral_batch.go); the march and tail
	// dispatch to their *Spectral twins.
	spec *spectralLanes

	// Cell slots of the chunk in flight.
	cells []grid.IntVector

	// Adaptive mode state, indexed by cell slot.
	adaptive   bool
	aMin, aMax int
	relTol     float64
	crng       []mathutil.RNG
	sh1, sh2   []float64
	n          []int
	csum       []float64
	mean, m2   []float64
	emit       []float64
	pending    []int
	npending   []int
}

func newBatchKernel(d *Domain, opts *Options, cnt *traceCounters) *batchKernel {
	k := &batchKernel{
		d:         d,
		ld:        d.finest(),
		tc:        newTraceCtx(opts),
		cnt:       cnt,
		passSteps: defaultPassSteps,
		laneCap:   defaultMaxBatchRays,
	}
	if opts.testPassSteps > 0 {
		k.passSteps = opts.testPassSteps
	}
	if k.adaptive = opts.adaptiveEnabled(); k.adaptive {
		k.aMin, k.aMax = opts.adaptiveBudget()
		k.relTol = opts.AdaptiveRelTol
		if k.aMax > k.laneCap {
			k.laneCap = k.aMax
		}
	} else if opts.NRays > k.laneCap {
		k.laneCap = opts.NRays
	}
	pd := d.ensurePacked()
	k.lvls = make([]levelCtx, len(d.Levels))
	for i := range d.Levels {
		ld := &d.Levels[i]
		k.lvls[i] = levelCtx{
			lvl:  ld.Level,
			pl:   pd.levels[i],
			recs: pd.levels[i].recs,
			lo0:  ld.ROI.Lo.X, lo1: ld.ROI.Lo.Y, lo2: ld.ROI.Lo.Z,
			hi0: ld.ROI.Hi.X, hi1: ld.ROI.Hi.Y, hi2: ld.ROI.Hi.Z,
		}
	}
	k.buf.grow(k.laneCap)
	return k
}

// collectFlow gathers the tile's flow cells (z fastest, the engine's
// cell order) into k.cells.
func (k *batchKernel) collectFlow(lo, hi grid.IntVector) {
	k.cells = k.cells[:0]
	for x := lo.X; x < hi.X; x++ {
		for y := lo.Y; y < hi.Y; y++ {
			for z := lo.Z; z < hi.Z; z++ {
				c := grid.IV(x, y, z)
				if k.ld.CellType.At(c) != field.Flow {
					continue
				}
				k.cells = append(k.cells, c)
			}
		}
	}
}

func (k *batchKernel) solveTile(lo, hi grid.IntVector, out *field.CC[float64], poll func() bool) bool {
	if !poll() {
		return false
	}
	k.collectFlow(lo, hi)
	if len(k.cells) == 0 {
		return true
	}
	if k.spec != nil {
		return k.solveSpectral(out, poll)
	}
	if k.adaptive {
		return k.solveAdaptive(out, poll)
	}
	return k.solveFixed(out, poll)
}

// solveFixed traces opts.NRays rays per cell, a chunk of cells at a
// time, and reduces each cell's lane sums in ray order — the bitwise
// twin of solveCell.
func (k *batchKernel) solveFixed(out *field.CC[float64], poll func() bool) bool {
	opts := k.tc.opts
	nRays := opts.NRays
	chunk := k.laneCap / nRays
	if chunk < 1 {
		chunk = 1
	}
	for start := 0; start < len(k.cells); start += chunk {
		end := start + chunk
		if end > len(k.cells) {
			end = len(k.cells)
		}
		group := k.cells[start:end]
		if !poll() {
			return false
		}
		k.active = k.active[:0]
		lane := 0
		for _, c := range group {
			rng := &k.tc.rng
			rng.SeedStream(opts.Seed, cellStreamID(c))
			var sh1, sh2 float64
			if opts.Stratified {
				sh1, sh2 = rng.Float64(), rng.Float64()
			}
			k.genRays(c, rng, sh1, sh2, 0, nRays, lane)
			lane += nRays
		}
		if !k.marchAll(poll) {
			return false
		}
		for i, c := range group {
			sum := 0.0
			for r := 0; r < nRays; r++ {
				sum += k.buf.sum[i*nRays+r]
			}
			meanI := sum / float64(nRays)
			kappa := k.ld.Abskg.At(c)
			out.Set(c, 4*math.Pi*kappa*(k.ld.SigmaT4OverPi.At(c)-meanI))
		}
	}
	return true
}

// genRays generates rays rFirst..rFirst+count−1 of cell c into lanes
// lane.., drawing from rng in solveCell's exact per-ray order (3 origin
// draws unless cell-centered, then 2 direction draws unless
// stratified).
func (k *batchKernel) genRays(c grid.IntVector, rng *mathutil.RNG, sh1, sh2 float64, rFirst, count, lane int) {
	opts := k.tc.opts
	lvl := k.ld.Level
	dx := lvl.CellSize()
	lo := lvl.CellLo(c)
	for r := rFirst; r < rFirst+count; r++ {
		var origin mathutil.Vec3
		if opts.CellCenteredRays {
			origin = lvl.CellCenter(c)
		} else {
			origin = mathutil.Vec3{
				X: lo.X + rng.Float64()*dx.X,
				Y: lo.Y + rng.Float64()*dx.Y,
				Z: lo.Z + rng.Float64()*dx.Z,
			}
		}
		var dir mathutil.Vec3
		if opts.Stratified {
			u1 := frac(mathutil.Halton(r, 2) + sh1)
			u2 := frac(mathutil.Halton(r, 3) + sh2)
			cosTheta := 2*u1 - 1
			sinTheta := math.Sqrt(1 - cosTheta*cosTheta)
			phi := 2 * math.Pi * u2
			dir = mathutil.Vec3{X: sinTheta * math.Cos(phi), Y: sinTheta * math.Sin(phi), Z: cosTheta}
		} else {
			dir = rng.UnitSphere()
		}
		if !k.startLane(lane, origin, dir) {
			k.active = append(k.active, lane)
		}
		lane++
	}
}

// startLane seeds lane l with a fresh ray at origin/dir on the finest
// level and marches it immediately — the fused generation pass. The DDA
// setup is flat per-axis arithmetic written straight into the arena (no
// marchState, no Vec3 switch dispatch), computing exactly initMarch's
// expressions with tCur = 0; most rays then terminate inside this first
// march and never revisit the arena. Returns true when the ray
// terminated; the caller parks survivors in the active list.
func (k *batchKernel) startLane(l int, origin, dir mathutil.Vec3) bool {
	k.cnt.rays++
	b := &k.buf
	li := len(k.lvls) - 1
	lc := &k.lvls[li]
	lvl := lc.lvl
	cell := lvl.CellContaining(origin)
	pl := lc.pl
	if !pl.box.Contains(cell) {
		panic(fmt.Sprintf("rmcrt: packed cursor at %v outside table %v", cell, pl.box))
	}
	dxv := lvl.CellSize()
	lov := lvl.CellLo(cell)
	var sx, sy, sz int
	var tdx, tdy, tdz, tmx, tmy, tmz float64
	// The explicit 0+… keeps the tCur addition initMarch performs (it
	// is not a no-op in IEEE arithmetic: 0 + (−0) is +0).
	if dc := dir.X; dc > 0 {
		sx, tdx, tmx = 1, dxv.X/dc, 0+(lov.X+dxv.X-origin.X)/dc
	} else if dc < 0 {
		sx, tdx, tmx = -1, -dxv.X/dc, 0+(lov.X-origin.X)/dc
	} else {
		sx, tdx, tmx = 0, math.Inf(1), math.Inf(1)
	}
	if dc := dir.Y; dc > 0 {
		sy, tdy, tmy = 1, dxv.Y/dc, 0+(lov.Y+dxv.Y-origin.Y)/dc
	} else if dc < 0 {
		sy, tdy, tmy = -1, -dxv.Y/dc, 0+(lov.Y-origin.Y)/dc
	} else {
		sy, tdy, tmy = 0, math.Inf(1), math.Inf(1)
	}
	if dc := dir.Z; dc > 0 {
		sz, tdz, tmz = 1, dxv.Z/dc, 0+(lov.Z+dxv.Z-origin.Z)/dc
	} else if dc < 0 {
		sz, tdz, tmz = -1, -dxv.Z/dc, 0+(lov.Z-origin.Z)/dc
	} else {
		sz, tdz, tmz = 0, math.Inf(1), math.Inf(1)
	}
	// Only what laneTail needs and the march never mutates goes to the
	// arena up front; the live march state stays in a stack laneRegs so
	// the common ray — terminating inside this first march — never pays
	// the 29-array SoA roundtrip at all.
	b.ox[l], b.oy[l], b.oz[l] = origin.X, origin.Y, origin.Z
	b.dx[l], b.dy[l], b.dz[l] = dir.X, dir.Y, dir.Z
	b.refl[l] = 0
	var st laneRegs
	st.cc[0], st.cc[1], st.cc[2] = cell.X, cell.Y, cell.Z
	st.ss[0], st.ss[1], st.ss[2] = sx, sy, sz
	st.dd[0], st.dd[1], st.dd[2] = pl.sx*sx, pl.sy*sy, sz
	st.tm[0], st.tm[1], st.tm[2] = tmx, tmy, tmz
	st.td[0], st.td[1], st.td[2] = tdx, tdy, tdz
	st.idx, st.li = pl.OffsetOf(cell), li
	st.trans = 1
	st.left = k.tc.maxSteps
	if k.spec != nil {
		k.spec.reset(l)
		return k.marchFromSpectral(l, k.passSteps, &st)
	}
	return k.marchFrom(l, k.passSteps, &st)
}

// storeGeom writes a lane's geometric march state (origin, direction,
// DDA state, packed cursor, level) back to the arena. The cursor is
// rebuilt through PackedLevel.cursor, preserving the scalar tracer's
// out-of-window panic semantics at every point a cursor is (re)built.
func (k *batchKernel) storeGeom(l, li int, origin, dir mathutil.Vec3, st *marchState) {
	b := &k.buf
	cur := k.lvls[li].pl.cursor(st)
	b.ox[l], b.oy[l], b.oz[l] = origin.X, origin.Y, origin.Z
	b.dx[l], b.dy[l], b.dz[l] = dir.X, dir.Y, dir.Z
	b.cx[l], b.cy[l], b.cz[l] = st.cell.X, st.cell.Y, st.cell.Z
	b.sx[l], b.sy[l], b.sz[l] = st.step.X, st.step.Y, st.step.Z
	b.tmx[l], b.tmy[l], b.tmz[l] = st.tMax.X, st.tMax.Y, st.tMax.Z
	b.tdx[l], b.tdy[l], b.tdz[l] = st.tDelta.X, st.tDelta.Y, st.tDelta.Z
	b.idx[l] = cur.idx
	b.d0[l], b.d1[l], b.d2[l] = cur.d[0], cur.d[1], cur.d[2]
	b.li[l] = li
}

// marchAll runs march passes over the active lanes, compacting
// terminated lanes out of the index list between passes, until the
// batch drains or poll reports cancellation.
func (k *batchKernel) marchAll(poll func() bool) bool {
	for len(k.active) > 0 {
		if !poll() {
			return false
		}
		keep := k.active[:0]
		for _, l := range k.active {
			if !k.marchLane(l, k.passSteps) {
				keep = append(keep, l)
			}
		}
		k.active = keep
	}
	return true
}

// laneRegs is the live march state of one lane, held on the stack while
// the lane is being marched. The common ray terminates inside its first
// march burst without ever touching the SoA arena; only slow events and
// parking spill/reload through loadRegs/syncRegs.
type laneRegs struct {
	cc, ss, dd [3]int     // current cell, step dir, flat-index deltas
	tm, td     [3]float64 // DDA tMax/tDelta per axis
	idx, li    int        // flat packed index, level index
	tau, trans float64
	tcur, sumI float64
	left       int // remaining maxSteps budget
}

// loadRegs fills st from lane l's arena state.
func (k *batchKernel) loadRegs(l int, st *laneRegs) {
	b := &k.buf
	st.cc = [3]int{b.cx[l], b.cy[l], b.cz[l]}
	st.ss = [3]int{b.sx[l], b.sy[l], b.sz[l]}
	st.dd = [3]int{b.d0[l], b.d1[l], b.d2[l]}
	st.tm = [3]float64{b.tmx[l], b.tmy[l], b.tmz[l]}
	st.td = [3]float64{b.tdx[l], b.tdy[l], b.tdz[l]}
	st.idx, st.li = b.idx[l], b.li[l]
	st.tau, st.trans = b.tau[l], b.trans[l]
	st.tcur, st.sumI = b.tcur[l], b.sum[l]
	st.left = b.left[l]
}

// syncRegs writes st back to lane l's arena state — everything laneTail
// and a later marchLane read. startLane-seeded lanes have never written
// the arena, so the geometry fields must all be stored here.
func (k *batchKernel) syncRegs(l int, st *laneRegs) {
	b := &k.buf
	b.cx[l], b.cy[l], b.cz[l] = st.cc[0], st.cc[1], st.cc[2]
	b.sx[l], b.sy[l], b.sz[l] = st.ss[0], st.ss[1], st.ss[2]
	b.d0[l], b.d1[l], b.d2[l] = st.dd[0], st.dd[1], st.dd[2]
	b.tmx[l], b.tmy[l], b.tmz[l] = st.tm[0], st.tm[1], st.tm[2]
	b.tdx[l], b.tdy[l], b.tdz[l] = st.td[0], st.td[1], st.td[2]
	b.idx[l], b.li[l] = st.idx, st.li
	b.tau[l], b.trans[l] = st.tau, st.trans
	b.tcur[l], b.sum[l] = st.tcur, st.sumI
	b.left[l] = st.left
}

// marchLane advances a parked lane l by at most budget DDA steps,
// returning true when the ray terminated (b.sum[l] holds its final
// sumI).
func (k *batchKernel) marchLane(l, budget int) bool {
	var st laneRegs
	k.loadRegs(l, &st)
	if k.spec != nil {
		return k.marchFromSpectral(l, budget, &st)
	}
	return k.marchFrom(l, budget, &st)
}

// marchFrom is the march core: traceRay's arithmetic on flat scalar
// locals seeded from st. Lane l's arena holds origin/direction/refl
// (laneTail's inputs); the rest of the arena is written only when a
// slow event or parking forces a spill.
func (k *batchKernel) marchFrom(l, budget int, st *laneRegs) bool {
	b := &k.buf
	threshold := k.tc.threshold
	for budget > 0 {
		lc := &k.lvls[st.li]
		recs := lc.recs
		lo0, lo1, lo2 := lc.lo0, lc.lo1, lc.lo2
		// ROI containment as three unsigned range checks: cc ∈ [lo,hi)
		// iff uint(cc−lo) < uint(hi−lo), halving the six signed
		// compares in the hot loop.
		ux0 := uint(lc.hi0 - lo0)
		ux1 := uint(lc.hi1 - lo1)
		ux2 := uint(lc.hi2 - lo2)
		// Axis-indexed local arrays make the advance branchless: the
		// crossed axis is data-dependent and effectively random, so a
		// per-axis switch mispredicts roughly half the time; indexed
		// loads/stores on stack arrays replace those branches with data
		// movement. The arrays are padded to length 4 so every ax-indexed
		// access below can be masked (ax & 3 < len), which lets the
		// compiler drop all bounds checks from the per-step loop.
		cc := [4]int{st.cc[0], st.cc[1], st.cc[2]}
		ss := [4]int{st.ss[0], st.ss[1], st.ss[2]}
		tm := [4]float64{st.tm[0], st.tm[1], st.tm[2]}
		td := [4]float64{st.td[0], st.td[1], st.td[2]}
		dd := [4]int{st.dd[0], st.dd[1], st.dd[2]}
		idx := st.idx
		tau, trans, tcur := st.tau, st.trans, st.tcur
		sumI := st.sumI
		left := st.left
		if left <= 0 {
			// maxSteps exhausted: the scalar loop falls off the end and
			// returns the sum accumulated so far.
			b.sum[l] = sumI
			return true
		}
		// One march burst: min(pass budget, remaining maxSteps) steps.
		eff := budget
		if left < eff {
			eff = left
		}
		n := 0
		done := false // ray terminated (extinction)
		slow := false // slow event: laneTail decides
		slowAx, slowROI := 0, false
		rec := &recs[idx]
		for n < eff {
			n++
			// nextAxis as a branchless min-select (same strict-<
			// tie-breaking: x wins ties, then y). Each guarded constant
			// assignment compiles to a CMOV — the crossed axis is
			// effectively random, so a branchy select would mispredict
			// roughly every other step. Tracking the min alongside the
			// index avoids a dependent tm[ax] reload after the select.
			ax := 0
			tNext := tm[0]
			if tm[1] < tNext {
				ax = 1
				tNext = tm[1]
			}
			if tm[2] < tNext {
				ax = 2
				tNext = tm[2]
			}
			ds := tNext - tcur
			if ds < 0 {
				ds = 0
			}

			// Segment accumulation: the one record load per step feeds
			// both this segment and the opaque check below.
			tauNew := tau + rec.Abskg*ds
			transNew := math.Exp(-tauNew)
			sumI += rec.SigmaT4OverPi * (trans - transNew)
			tau, trans = tauNew, transNew

			if trans < threshold {
				done = true // extinction
				break
			}

			tcur = tNext
			axm := ax & 3
			cc[axm] += ss[axm]
			tm[axm] += td[axm]
			idx += dd[axm]

			if uint(cc[0]-lo0) < ux0 && uint(cc[1]-lo1) < ux1 && uint(cc[2]-lo2) < ux2 {
				rec = &recs[idx]
				if rec.Flags == 0 {
					continue
				}
				slow, slowAx, slowROI = true, ax, true
			} else {
				// Outside the ROI the flat index is not meaningful;
				// laneTail rebuilds the cursor after the wall/drop.
				slow, slowAx, slowROI = true, ax, false
			}
			break
		}
		budget -= n
		left -= n
		k.cnt.steps += int64(n)
		if done {
			b.sum[l] = sumI
			return true
		}
		// Spill the live state to the arena (laneTail reads it there;
		// a parked lane reloads it on its next pass).
		st.cc = [3]int{cc[0], cc[1], cc[2]}
		st.tm = [3]float64{tm[0], tm[1], tm[2]}
		st.idx = idx
		st.tau, st.trans, st.tcur = tau, trans, tcur
		st.sumI, st.left = sumI, left
		k.syncRegs(l, st)
		if slow {
			if k.laneTail(l, slowAx, slowROI) {
				return true
			}
			// The event may have moved the lane to another level:
			// reload the rebuilt geometry and go around.
			k.loadRegs(l, st)
			continue
		}
		if left <= 0 {
			return true // maxSteps exhausted
		}
		return false // pass budget exhausted: lane parked
	}
	return false
}

// laneTail handles one slow event for lane l — the ray left its level's
// ROI (inROI false: enclosure wall at the coarsest level, level drop
// otherwise) and/or advanced into an opaque cell. It is called with the
// lane synced to the arena just after the advance across axis ax, and
// mirrors the corresponding traceRay blocks statement for statement
// (same Vec3/grid helper calls, same order), so the cold path stays
// bitwise identical too. Returns true when the ray terminated.
func (k *batchKernel) laneTail(l, ax int, inROI bool) bool {
	b := &k.buf
	tc := &k.tc
	li := b.li[l]
	lc := &k.lvls[li]
	cell := grid.IV(b.cx[l], b.cy[l], b.cz[l])
	step := grid.IV(b.sx[l], b.sy[l], b.sz[l])
	origin := mathutil.Vec3{X: b.ox[l], Y: b.oy[l], Z: b.oz[l]}
	dir := mathutil.Vec3{X: b.dx[l], Y: b.dy[l], Z: b.dz[l]}
	tau, trans, tCur := b.tau[l], b.trans[l], b.tcur[l]
	sumI := b.sum[l]
	dropped := false

	if !inROI {
		if li == 0 {
			// Enclosure wall.
			sumI += tc.wallIntensity * trans
			if !tc.reflections || tc.wallEmissivity >= 1 ||
				b.refl[l] >= tc.maxReflections {
				b.sum[l] = sumI
				return true
			}
			trans *= 1 - tc.wallEmissivity
			tau -= math.Log(1 - tc.wallEmissivity)
			if trans < tc.threshold {
				b.sum[l] = sumI
				return true
			}
			b.refl[l]++
			inside := cell.WithComponent(ax, cell.Component(ax)-step.Component(ax))
			p := origin.Add(dir.Scale(tCur))
			dir = dir.WithComponent(ax, -dir.Component(ax))
			origin, tCur = p, 0
			st := initMarch(lc.lvl, inside, origin, dir, 0)
			b.tau[l], b.trans[l], b.tcur[l] = tau, trans, tCur
			b.sum[l] = sumI
			k.storeGeom(l, li, origin, dir, &st)
			return false
		}
		// Drop to the next coarser level at the current position,
		// nudged slightly forward (traceRay's level-drop block).
		li--
		lc = &k.lvls[li]
		eps := 1e-9 * lc.lvl.CellSize().MinComponent()
		p := origin.Add(dir.Scale(tCur + eps))
		ncell := lc.lvl.CellContaining(p)
		st := initMarch(lc.lvl, ncell, p, dir, tCur)
		k.storeGeom(l, li, origin, dir, &st)
		cell, step = st.cell, st.step
		dropped = true
	}

	// Opaque cell: emission pickup, then terminate or reflect.
	if rec := &lc.recs[b.idx[l]]; rec.Flags != 0 {
		sumI += tc.wallEmissivity * rec.SigmaT4OverPi * trans
		if !tc.reflections || tc.wallEmissivity >= 1 ||
			b.refl[l] >= tc.maxReflections {
			b.sum[l] = sumI
			return true
		}
		trans *= 1 - tc.wallEmissivity
		tau -= math.Log(1 - tc.wallEmissivity)
		if trans < tc.threshold {
			b.sum[l] = sumI
			return true
		}
		b.refl[l]++
		inside := cell.WithComponent(ax, cell.Component(ax)-step.Component(ax))
		p := origin.Add(dir.Scale(tCur))
		if dropped && !enteredThroughFace(lc.lvl, cell, ax, step.Component(ax), p) {
			inside = cell
		}
		dir = dir.WithComponent(ax, -dir.Component(ax))
		origin, tCur = p, 0
		st := initMarch(lc.lvl, inside, origin, dir, 0)
		b.tau[l], b.trans[l], b.tcur[l] = tau, trans, tCur
		b.sum[l] = sumI
		k.storeGeom(l, li, origin, dir, &st)
	}
	return false
}

// Adaptive ray budgets ------------------------------------------------

// solveAdaptive runs the wave loop: every unconverged cell of the chunk
// receives one wave per round (AdaptiveMinRays first, then doubling
// top-ups capped at AdaptiveMaxRays), waves are marched in lane-capacity
// sub-batches, and each cell's Welford accumulator decides — purely from
// its own ray values, in ray order — whether it is done. Cancellation is
// polled between waves and passes, so top-up waves interleave cleanly
// with prompt cancellation.
func (k *batchKernel) solveAdaptive(out *field.CC[float64], poll func() bool) bool {
	opts := k.tc.opts
	nc := len(k.cells)
	k.growSlots(nc)
	for i, c := range k.cells {
		rng := &k.crng[i]
		rng.SeedStream(opts.Seed, cellStreamID(c))
		k.sh1[i], k.sh2[i] = 0, 0
		if opts.Stratified {
			k.sh1[i], k.sh2[i] = rng.Float64(), rng.Float64()
		}
		k.n[i], k.csum[i] = 0, 0
		k.mean[i], k.m2[i] = 0, 0
		k.emit[i] = k.ld.SigmaT4OverPi.At(c)
	}
	k.pending = k.pending[:0]
	for i := range k.cells {
		k.pending = append(k.pending, i)
	}

	for len(k.pending) > 0 {
		k.npending = k.npending[:0]
		// One wave per pending slot this round, in lane-capacity
		// sub-batches of slots.
		for at := 0; at < len(k.pending); {
			lanes := 0
			end := at
			for end < len(k.pending) {
				w := k.waveSize(k.pending[end])
				if lanes+w > k.laneCap && end > at {
					break
				}
				lanes += w
				end++
			}
			if !poll() {
				return false
			}
			k.active = k.active[:0]
			lane := 0
			for _, s := range k.pending[at:end] {
				w := k.waveSize(s)
				k.genRays(k.cells[s], &k.crng[s], k.sh1[s], k.sh2[s], k.n[s], w, lane)
				lane += w
			}
			if !k.marchAll(poll) {
				return false
			}
			lane = 0
			for _, s := range k.pending[at:end] {
				w := k.waveSize(s)
				for r := 0; r < w; r++ {
					x := k.buf.sum[lane+r]
					k.n[s]++
					k.csum[s] += x
					delta := x - k.mean[s]
					k.mean[s] += delta / float64(k.n[s])
					k.m2[s] += delta * (x - k.mean[s])
				}
				lane += w
				if !k.converged(s) {
					k.npending = append(k.npending, s)
				}
			}
			at = end
		}
		k.pending, k.npending = k.npending, k.pending
	}

	for i, c := range k.cells {
		meanI := k.csum[i] / float64(k.n[i])
		kappa := k.ld.Abskg.At(c)
		out.Set(c, 4*math.Pi*kappa*(k.ld.SigmaT4OverPi.At(c)-meanI))
	}
	return true
}

// waveSize returns slot s's next wave: the initial AdaptiveMinRays
// budget, then doubling top-ups clamped to the AdaptiveMaxRays cap.
func (k *batchKernel) waveSize(s int) int {
	n := k.n[s]
	if n == 0 {
		return k.aMin
	}
	w := n
	if rem := k.aMax - n; w > rem {
		w = rem
	}
	return w
}

// converged applies the per-cell stopping rule: done at the budget cap,
// or when the standard error of the mean-intensity estimate drops below
// AdaptiveRelTol relative to the cell's signal scale (the larger of
// |mean intensity| and the cell's own emitted intensity, so cold cells
// in hot surroundings still resolve their incoming flux).
func (k *batchKernel) converged(s int) bool {
	n := k.n[s]
	if n >= k.aMax {
		return true
	}
	if n < 2 {
		return false
	}
	sem := math.Sqrt(k.m2[s] / float64(n-1) / float64(n))
	scale := math.Abs(k.csum[s] / float64(n))
	if e := k.emit[s]; e > scale {
		scale = e
	}
	return sem <= k.relTol*scale
}

func (k *batchKernel) growSlots(n int) {
	if cap(k.crng) >= n {
		k.crng = k.crng[:n]
		k.sh1, k.sh2 = k.sh1[:n], k.sh2[:n]
		k.n, k.csum = k.n[:n], k.csum[:n]
		k.mean, k.m2 = k.mean[:n], k.m2[:n]
		k.emit = k.emit[:n]
		return
	}
	k.crng = make([]mathutil.RNG, n)
	k.sh1, k.sh2 = make([]float64, n), make([]float64, n)
	k.n = make([]int, n)
	k.csum = make([]float64, n)
	k.mean, k.m2 = make([]float64, n), make([]float64, n)
	k.emit = make([]float64, n)
}

// Scalar fallback kernel ----------------------------------------------

// scalarKernel is the per-cell scalar path: the pre-batching engine
// loop, kept for configurations whose trace-time RNG draws (scattering)
// a pre-generated batch cannot reproduce, and as the measured baseline
// for batched-vs-scalar benchmarks (Options.testForceScalar).
type scalarKernel struct {
	d      *Domain
	ld     *LevelData
	tc     traceCtx
	cnt    *traceCounters
	solved int

	adaptive   bool
	aMin, aMax int
	relTol     float64
}

func newScalarKernel(d *Domain, opts *Options, cnt *traceCounters) *scalarKernel {
	k := &scalarKernel{d: d, ld: d.finest(), tc: newTraceCtx(opts), cnt: cnt}
	if k.adaptive = opts.adaptiveEnabled(); k.adaptive {
		k.aMin, k.aMax = opts.adaptiveBudget()
		k.relTol = opts.AdaptiveRelTol
	}
	return k
}

func (k *scalarKernel) solveTile(lo, hi grid.IntVector, out *field.CC[float64], poll func() bool) bool {
	for x := lo.X; x < hi.X; x++ {
		for y := lo.Y; y < hi.Y; y++ {
			for z := lo.Z; z < hi.Z; z++ {
				if k.solved%cancelCheckEvery == 0 && !poll() {
					return false
				}
				k.solved++
				c := grid.IV(x, y, z)
				if k.ld.CellType.At(c) != field.Flow {
					continue
				}
				if k.adaptive {
					out.Set(c, k.solveCellAdaptive(c))
				} else {
					out.Set(c, k.d.solveCell(c, &k.tc, k.cnt))
				}
			}
		}
	}
	return true
}

// solveCellAdaptive is the scalar twin of the batched adaptive wave
// loop: rays are traced one at a time off the same per-cell stream (so
// scattering draws interleave exactly as in solveCell) with the same
// Welford stopping rule after each wave. Batched and scalar adaptive
// agree whenever the per-ray results agree (i.e. without scattering).
func (k *scalarKernel) solveCellAdaptive(c grid.IntVector) float64 {
	opts := k.tc.opts
	ld := k.ld
	rng := &k.tc.rng
	rng.SeedStream(opts.Seed, cellStreamID(c))
	lvl := ld.Level
	dx := lvl.CellSize()
	lo := lvl.CellLo(c)
	var sh1, sh2 float64
	if opts.Stratified {
		sh1, sh2 = rng.Float64(), rng.Float64()
	}
	emit := ld.SigmaT4OverPi.At(c)

	n := 0
	csum, mean, m2 := 0.0, 0.0, 0.0
	for n < k.aMax {
		wave := k.aMin
		if n > 0 {
			wave = n
			if rem := k.aMax - n; wave > rem {
				wave = rem
			}
		}
		// Snapshot the wave end: n advances inside the body, so a
		// `r < n+wave` bound would chase it forever.
		for r, end := n, n+wave; r < end; r++ {
			var origin mathutil.Vec3
			if opts.CellCenteredRays {
				origin = lvl.CellCenter(c)
			} else {
				origin = mathutil.Vec3{
					X: lo.X + rng.Float64()*dx.X,
					Y: lo.Y + rng.Float64()*dx.Y,
					Z: lo.Z + rng.Float64()*dx.Z,
				}
			}
			var dir mathutil.Vec3
			if opts.Stratified {
				u1 := frac(mathutil.Halton(r, 2) + sh1)
				u2 := frac(mathutil.Halton(r, 3) + sh2)
				cosTheta := 2*u1 - 1
				sinTheta := math.Sqrt(1 - cosTheta*cosTheta)
				phi := 2 * math.Pi * u2
				dir = mathutil.Vec3{X: sinTheta * math.Cos(phi), Y: sinTheta * math.Sin(phi), Z: cosTheta}
			} else {
				dir = rng.UnitSphere()
			}
			x := k.d.traceRay(origin, dir, rng, &k.tc, k.cnt)
			csum += x
			delta := x - mean
			mean += delta / float64(n+1)
			m2 += delta * (x - mean)
			n++
		}
		if n >= 2 && n < k.aMax {
			sem := math.Sqrt(m2 / float64(n-1) / float64(n))
			scale := math.Abs(csum / float64(n))
			if emit > scale {
				scale = emit
			}
			if sem <= k.relTol*scale {
				break
			}
		}
	}
	meanI := csum / float64(n)
	kappa := ld.Abskg.At(c)
	return 4 * math.Pi * kappa * (ld.SigmaT4OverPi.At(c) - meanI)
}

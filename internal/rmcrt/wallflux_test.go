package rmcrt

import (
	"math"
	"testing"

	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/mathutil"
)

func TestWallFluxMapBlackbodyLimit(t *testing.T) {
	// Optically thick hot medium: every face cell sees a blackbody at
	// the medium temperature, q = σT⁴ = 1 uniformly.
	d := uniformDomain(t, 8, 200, 1.0)
	opts := DefaultOptions()
	opts.NRays = 64
	fm, err := d.SolveWallFluxMap(YPlus, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if fm.NU != 8 || fm.NV != 8 {
		t.Fatalf("map shape %dx%d", fm.NU, fm.NV)
	}
	for u := 0; u < fm.NU; u++ {
		for v := 0; v < fm.NV; v++ {
			if q := fm.At(u, v); mathutil.RelErr(q, 1.0, 1e-12) > 0.05 {
				t.Fatalf("face cell (%d,%d) flux %g, want ~1", u, v, q)
			}
		}
	}
	if mathutil.RelErr(fm.Mean(), 1.0, 1e-12) > 0.02 {
		t.Errorf("mean flux = %g", fm.Mean())
	}
}

func TestWallFluxMapSeesHotSpot(t *testing.T) {
	// A hot emitting blob near the x- wall makes the flux map peak in
	// front of it.
	d := uniformDomain(t, 16, 0.02, 0)
	ld := &d.Levels[0]
	// Blob around (0.2, 0.25, 0.25): strong emitter, locally opaque-ish.
	for x := 2; x < 5; x++ {
		for y := 3; y < 6; y++ {
			for z := 3; z < 6; z++ {
				ld.Abskg.Set(grid.IV(x, y, z), 5.0)
				ld.SigmaT4OverPi.Set(grid.IV(x, y, z), 10/math.Pi)
			}
		}
	}
	opts := DefaultOptions()
	opts.NRays = 128
	fm, err := d.SolveWallFluxMap(XMinus, &opts)
	if err != nil {
		t.Fatal(err)
	}
	// Face axes for x- are (y, z): the peak should sit near (4, 4) and
	// exceed the far corner by a wide margin.
	near := fm.At(4, 4)
	far := fm.At(14, 14)
	if near <= 3*far {
		t.Errorf("hot-spot flux %g should dominate far corner %g", near, far)
	}
	if fm.Max() < near {
		t.Errorf("Max() = %g below sampled %g", fm.Max(), near)
	}
}

func TestWallFluxMapSymmetry(t *testing.T) {
	// The uniform benchmark is symmetric: opposite faces see
	// statistically identical flux means.
	d, _, err := NewBenchmarkDomain(10)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.NRays = 64
	a, err := d.SolveWallFluxMap(XMinus, &opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.SolveWallFluxMap(XPlus, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if mathutil.RelErr(a.Mean(), b.Mean(), 1e-12) > 0.05 {
		t.Errorf("x- mean %g vs x+ mean %g", a.Mean(), b.Mean())
	}
}

func TestWallFluxMapDeterministic(t *testing.T) {
	d1, _, _ := NewBenchmarkDomain(8)
	d2, _, _ := NewBenchmarkDomain(8)
	opts := DefaultOptions()
	opts.NRays = 8
	a, err := d1.SolveWallFluxMap(ZMinus, &opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d2.SolveWallFluxMap(ZMinus, &opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Q {
		if a.Q[i] != b.Q[i] {
			t.Fatalf("flux map not deterministic at %d", i)
		}
	}
}

func TestWallFluxMapValidation(t *testing.T) {
	d, _, _ := NewBenchmarkDomain(4)
	bad := Options{NRays: 0, Threshold: 0.1}
	if _, err := d.SolveWallFluxMap(XMinus, &bad); err == nil {
		t.Error("invalid options accepted")
	}
}

func TestOtherAxes(t *testing.T) {
	cases := [][3]int{{0, 1, 2}, {1, 0, 2}, {2, 0, 1}}
	for _, c := range cases {
		a, b := otherAxes(c[0])
		if a != c[1] || b != c[2] {
			t.Errorf("otherAxes(%d) = %d,%d", c[0], a, b)
		}
	}
}

// TestGlobalEnergyBalance ties the volume and surface solvers together:
// with cold black walls, the net radiative loss of the medium
// (∫divQ dV) must equal the total radiative power arriving at the six
// walls (Σ mean incident flux × wall area), within Monte Carlo noise.
// This is the global statement of the conservation the RTE encodes.
func TestGlobalEnergyBalance(t *testing.T) {
	if testing.Short() {
		t.Skip("energy balance skipped in -short")
	}
	const n = 12
	d, g, err := NewBenchmarkDomain(n)
	if err != nil {
		t.Fatal(err)
	}
	lvl := g.Levels[0]
	opts := DefaultOptions()
	opts.NRays = 96

	divQ, err := d.SolveRegion(lvl.IndexBox(), &opts)
	if err != nil {
		t.Fatal(err)
	}
	vol := lvl.CellVolume()
	var netLoss float64
	for _, q := range divQ.Data() {
		netLoss += q * vol
	}

	var wallGain float64
	for _, f := range []WallFace{XMinus, XPlus, YMinus, YPlus, ZMinus, ZPlus} {
		fm, err := d.SolveWallFluxMap(f, &opts)
		if err != nil {
			t.Fatal(err)
		}
		wallGain += fm.Mean() * 1.0 // unit cube: each wall area = 1
	}
	if rel := mathutil.RelErr(netLoss, wallGain, 1e-12); rel > 0.05 {
		t.Errorf("energy imbalance: medium loses %.4f W, walls receive %.4f W (%.1f%%)",
			netLoss, wallGain, 100*rel)
	}
}

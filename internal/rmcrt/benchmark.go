package rmcrt

import (
	"fmt"
	"math"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/mathutil"
)

// Burns & Christon benchmark [30]: a unit cube of radiatively
// participating medium with the trilinear absorption coefficient
//
//	κ(x,y,z) = 0.9·(1−2|x−½|)(1−2|y−½|)(1−2|z−½|) + 0.1
//
// (peak 1.0 at the center, 0.1 at corners), a uniform temperature such
// that σT⁴ = 1 W/m², and cold black walls. The quantity of interest is
// the divergence of the heat flux in every cell. This is the problem
// behind the paper's Figures 2 and 3 and its accuracy citations [3].

// BenchmarkSigmaT4 is the uniform emissive power σT⁴ of the medium.
const BenchmarkSigmaT4 = 1.0

// BenchmarkKappa evaluates the Burns & Christon absorption coefficient
// at physical point (x, y, z) of the unit cube.
func BenchmarkKappa(x, y, z float64) float64 {
	f := func(t float64) float64 { return 1 - 2*math.Abs(t-0.5) }
	return 0.9*f(x)*f(y)*f(z) + 0.1
}

// FillBenchmark populates κ, σT⁴/π and cellType for the Burns &
// Christon problem over window on level lvl (cell-center sampling).
// All cells are flow cells; the cube's walls are the domain boundary,
// handled by the tracer's wall options.
func FillBenchmark(lvl *grid.Level, window grid.Box) (abskg, sigT4OverPi *field.CC[float64], ct *field.CC[field.CellType]) {
	abskg = field.NewCC[float64](window)
	sigT4OverPi = field.NewCC[float64](window)
	ct = field.NewCC[field.CellType](window)
	abskg.FillFunc(func(c grid.IntVector) float64 {
		p := lvl.CellCenter(c)
		return BenchmarkKappa(p.X, p.Y, p.Z)
	})
	sigT4OverPi.Fill(BenchmarkSigmaT4 / math.Pi)
	ct.Fill(field.Flow)
	return abskg, sigT4OverPi, ct
}

// NewBenchmarkDomain builds a single-level tracer domain for the Burns
// & Christon problem at resolution n³ (unit cube, one patch).
func NewBenchmarkDomain(n int) (*Domain, *grid.Grid, error) {
	g, err := grid.New(
		mathutil.V3(0, 0, 0), mathutil.V3(1, 1, 1),
		grid.Spec{Resolution: grid.Uniform(n), PatchSize: grid.Uniform(n)},
	)
	if err != nil {
		return nil, nil, err
	}
	lvl := g.Levels[0]
	abskg, sig, ct := FillBenchmark(lvl, lvl.IndexBox())
	d := &Domain{Levels: []LevelData{{
		Level: lvl, ROI: lvl.IndexBox(),
		Abskg: abskg, SigmaT4OverPi: sig, CellType: ct,
	}}}
	return d, g, nil
}

// NewMultiLevelBenchmark builds a 2-level tracer domain for the
// benchmark: a fine level of fineN³ cells (split into patches of
// patchN³) and a coarse radiation level of fineN/rr³ cells spanning the
// domain — the paper's configuration (e.g. fine 256³ / coarse 64³,
// refinement ratio 4). It returns the grid plus a constructor that
// builds the per-patch Domain (fine ROI = patch + halo, coarse ROI =
// whole level) for any fine patch.
func NewMultiLevelBenchmark(fineN, patchN, rr, halo int) (*grid.Grid, func(p *grid.Patch) (*Domain, error), error) {
	if fineN%rr != 0 {
		return nil, nil, fmt.Errorf("rmcrt: fine resolution %d not divisible by refinement ratio %d", fineN, rr)
	}
	coarseN := fineN / rr
	g, err := grid.New(
		mathutil.V3(0, 0, 0), mathutil.V3(1, 1, 1),
		grid.Spec{Resolution: grid.Uniform(coarseN), PatchSize: grid.Uniform(coarseN)},
		grid.Spec{Resolution: grid.Uniform(fineN), PatchSize: grid.Uniform(patchN)},
	)
	if err != nil {
		return nil, nil, err
	}
	fine, coarse := g.Levels[1], g.Levels[0]

	// Fine-level properties over the whole level (the CFD mesh state);
	// per-patch domains window into it.
	fa, fs, fc := FillBenchmark(fine, fine.IndexBox())
	// Coarse-level properties are the conservative projection of the
	// fine level — exactly what Uintah's coarsening tasks compute.
	ca := field.NewCC[float64](coarse.IndexBox())
	cs := field.NewCC[float64](coarse.IndexBox())
	cc := field.NewCC[field.CellType](coarse.IndexBox())
	rrv := grid.Uniform(rr)
	field.CoarsenAverage(ca, fa, rrv)
	field.CoarsenAverage(cs, fs, rrv)
	field.CoarsenCellType(cc, fc, rrv)

	mk := func(p *grid.Patch) (*Domain, error) {
		if p.LevelIndex != 1 {
			return nil, fmt.Errorf("rmcrt: patch %d is not on the fine level", p.ID)
		}
		roi := p.Cells.Grow(halo).Intersect(fine.IndexBox())
		// The fine window aliases the full-level fields: cheap, and the
		// tracer only reads within the ROI.
		return &Domain{Levels: []LevelData{
			{Level: coarse, ROI: coarse.IndexBox(), Abskg: ca, SigmaT4OverPi: cs, CellType: cc},
			{Level: fine, ROI: roi, Abskg: fa, SigmaT4OverPi: fs, CellType: fc},
		}}, nil
	}
	return g, mk, nil
}

// NewThreeLevelBenchmark builds the benchmark with the general
// level-upon-level hierarchy the paper's AMR design allows: a fine
// level (fineN³ in patchN³ patches), a mid radiation level at
// fineN/rr³, and a coarsest level at fineN/rr²³, every level spanning
// the domain. Rays march the fine ROI (patch + halo), drop to the mid
// level inside the mid ROI (the refined fine ROI grown by midHalo),
// and the coarsest level everywhere else.
func NewThreeLevelBenchmark(fineN, patchN, rr, halo, midHalo int) (*grid.Grid, func(p *grid.Patch) (*Domain, error), error) {
	if fineN%(rr*rr) != 0 {
		return nil, nil, fmt.Errorf("rmcrt: fine resolution %d not divisible by rr² = %d", fineN, rr*rr)
	}
	midN, coarseN := fineN/rr, fineN/(rr*rr)
	g, err := grid.New(
		mathutil.V3(0, 0, 0), mathutil.V3(1, 1, 1),
		grid.Spec{Resolution: grid.Uniform(coarseN), PatchSize: grid.Uniform(coarseN)},
		grid.Spec{Resolution: grid.Uniform(midN), PatchSize: grid.Uniform(midN)},
		grid.Spec{Resolution: grid.Uniform(fineN), PatchSize: grid.Uniform(patchN)},
	)
	if err != nil {
		return nil, nil, err
	}
	coarse, mid, fine := g.Levels[0], g.Levels[1], g.Levels[2]

	fa, fs, fc := FillBenchmark(fine, fine.IndexBox())
	rrv := grid.Uniform(rr)

	ma := field.NewCC[float64](mid.IndexBox())
	ms := field.NewCC[float64](mid.IndexBox())
	mc := field.NewCC[field.CellType](mid.IndexBox())
	field.CoarsenAverage(ma, fa, rrv)
	field.CoarsenAverage(ms, fs, rrv)
	field.CoarsenCellType(mc, fc, rrv)

	ca := field.NewCC[float64](coarse.IndexBox())
	cs := field.NewCC[float64](coarse.IndexBox())
	cc := field.NewCC[field.CellType](coarse.IndexBox())
	field.CoarsenAverage(ca, ma, rrv)
	field.CoarsenAverage(cs, ms, rrv)
	field.CoarsenCellType(cc, mc, rrv)

	mk := func(p *grid.Patch) (*Domain, error) {
		if p.LevelIndex != 2 {
			return nil, fmt.Errorf("rmcrt: patch %d is not on the fine level", p.ID)
		}
		fineROI := p.Cells.Grow(halo).Intersect(fine.IndexBox())
		midROI := fineROI.Coarsen(rrv).Grow(midHalo).Intersect(mid.IndexBox())
		return &Domain{Levels: []LevelData{
			{Level: coarse, ROI: coarse.IndexBox(), Abskg: ca, SigmaT4OverPi: cs, CellType: cc},
			{Level: mid, ROI: midROI, Abskg: ma, SigmaT4OverPi: ms, CellType: mc},
			{Level: fine, ROI: fineROI, Abskg: fa, SigmaT4OverPi: fs, CellType: fc},
		}}, nil
	}
	return g, mk, nil
}

package rmcrt

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/mathutil"
)

// randIndex draws a uniform in-range stream index component.
func randIndex(rng *rand.Rand) int {
	return rng.Intn(2*streamIndexLimit) - streamIndexLimit
}

// TestCellStreamCollisionFree is the collision-freedom property test:
// over the representable range [−2²⁰, 2²⁰)³, distinct cells must map to
// distinct stream ids. Random pairs plus adversarial neighbours around
// the field boundaries (where a packing off-by-one would alias).
func TestCellStreamCollisionFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		a := grid.IV(randIndex(rng), randIndex(rng), randIndex(rng))
		b := grid.IV(randIndex(rng), randIndex(rng), randIndex(rng))
		if a == b {
			continue
		}
		if cellStreamID(a) == cellStreamID(b) {
			t.Fatalf("stream collision: %v and %v both map to %#x", a, b, cellStreamID(a))
		}
	}

	// Field-boundary neighbours: ±1 in one axis at the extremes of
	// another. A 21-bit field overflowing into its neighbour would make
	// some of these collide.
	extremes := []int{-streamIndexLimit, -1, 0, 1, streamIndexLimit - 1}
	var cells []grid.IntVector
	for _, x := range extremes {
		for _, y := range extremes {
			for _, z := range extremes {
				cells = append(cells, grid.IV(x, y, z))
			}
		}
	}
	seen := make(map[uint64]grid.IntVector, len(cells))
	for _, c := range cells {
		id := cellStreamID(c)
		if prev, dup := seen[id]; dup {
			t.Fatalf("stream collision at extremes: %v and %v both map to %#x", prev, c, id)
		}
		seen[id] = c
	}
}

// TestCellStreamIDFrozen pins the exact packing: changing it would
// silently change every divQ ever computed (and invalidate cached and
// checkpointed results), so any change must be deliberate and show up
// here.
func TestCellStreamIDFrozen(t *testing.T) {
	cases := []struct {
		c    grid.IntVector
		want uint64
	}{
		{grid.IV(0, 0, 0), (1 << 62) | (1 << 41) | (1 << 20)},
		{grid.IV(1, 2, 3), ((1<<20)+1)<<42 | ((1<<20)+2)<<21 | ((1 << 20) + 3)},
		{grid.IV(-(1 << 20), -(1 << 20), -(1 << 20)), 0},
		{grid.IV((1<<20)-1, (1<<20)-1, (1<<20)-1), (1 << 63) - 1},
	}
	for _, tc := range cases {
		if got := cellStreamID(tc.c); got != tc.want {
			t.Errorf("cellStreamID(%v) = %#x, want %#x", tc.c, got, tc.want)
		}
	}
}

// TestNonCellNamespaceDisjoint proves property 2 of streams.go: every
// non-cell stream id has bit 63 set, every representable cell id has it
// clear, so the namespaces cannot intersect.
func TestNonCellNamespaceDisjoint(t *testing.T) {
	// Cell ids occupy bits 0..62 only; the corner cases bound the range.
	for _, c := range []grid.IntVector{
		grid.IV(-(1 << 20), -(1 << 20), -(1 << 20)),
		grid.IV((1<<20)-1, (1<<20)-1, (1<<20)-1),
		grid.IV(0, 0, 0),
	} {
		if cellStreamID(c)&streamTagNonCell != 0 {
			t.Fatalf("cell id %v has the non-cell tag bit set", c)
		}
	}
	faces := []WallFace{XMinus, XPlus, YMinus, YPlus, ZMinus, ZPlus}
	for _, f := range faces {
		if wallFaceStreamID(f)&streamTagNonCell == 0 {
			t.Errorf("wallFaceStreamID(%v) lacks the non-cell tag", f)
		}
	}
	if wallMapStreamID(YPlus, 11, 42)&streamTagNonCell == 0 {
		t.Error("wallMapStreamID lacks the non-cell tag")
	}
	r := Radiometer{Pos: mathutil.V3(0.5, 0.5, 0.5), Dir: mathutil.V3(0, 0, 1), HalfAngle: 0.3}
	if radiometerStreamID(r)&streamTagNonCell == 0 {
		t.Error("radiometerStreamID lacks the non-cell tag")
	}

	// Sub-namespaces are disjoint from each other too.
	if wallFaceStreamID(ZPlus) == wallMapStreamID(ZPlus, 0, 0) {
		t.Error("wall-face and wall-map streams collide")
	}
	for _, f := range faces {
		for g := range faces {
			if f != faces[g] && wallFaceStreamID(f) == wallFaceStreamID(faces[g]) {
				t.Errorf("faces %v and %v share a stream", f, faces[g])
			}
		}
	}
}

// TestSeedWallFluxStreamCollided documents the bug this PR fixes: the
// seed engine's wall-flux stream id uint64(face)+0xface is exactly the
// cell stream of a valid (if extreme) cell, so a solve touching that
// cell shared rays with the wall-flux estimate.
func TestSeedWallFluxStreamCollided(t *testing.T) {
	for _, f := range []WallFace{XMinus, XPlus, YMinus, YPlus, ZMinus, ZPlus} {
		seedID := uint64(f) + 0xface
		collider := grid.IV(-(1 << 20), -(1 << 20), int(f)+0xface-(1<<20))
		if cellStreamID(collider) != seedID {
			t.Fatalf("expected seed wall stream %#x to collide with cell %v (got %#x)",
				seedID, collider, cellStreamID(collider))
		}
		if !streamIndexInRange(collider) {
			t.Fatalf("collider %v should be in the representable range", collider)
		}
		// The fixed id cannot collide with any representable cell.
		if wallFaceStreamID(f)>>63 != 1 {
			t.Fatalf("fixed wall stream %#x is not tagged", wallFaceStreamID(f))
		}
	}
}

// TestValidateRejectsOutOfRangeROI checks Domain.Validate refuses ROIs
// whose indices the stream packing cannot represent, instead of letting
// cells silently alias RNG streams.
func TestValidateRejectsOutOfRangeROI(t *testing.T) {
	for _, tc := range []struct {
		name string
		roi  grid.Box
	}{
		{"above", grid.NewBox(grid.IV(1<<20, 0, 0), grid.IV((1<<20)+2, 2, 2))},
		{"below", grid.NewBox(grid.IV(0, -(1<<20)-1, 0), grid.IV(2, 1, 2))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, _, err := NewBenchmarkDomain(8)
			if err != nil {
				t.Fatal(err)
			}
			ld := &d.Levels[0]
			ld.ROI = tc.roi
			ld.Abskg = field.NewCC[float64](tc.roi)
			ld.SigmaT4OverPi = field.NewCC[float64](tc.roi)
			ld.CellType = field.NewCC[field.CellType](tc.roi)
			err = d.Validate()
			if err == nil {
				t.Fatal("Validate accepted an out-of-range ROI")
			}
			if !strings.Contains(err.Error(), "stream index range") {
				t.Fatalf("unexpected error: %v", err)
			}
		})
	}
}

// TestOptionsValidateTileSize checks the TileSize knob's validation and
// default.
func TestOptionsValidateTileSize(t *testing.T) {
	o := DefaultOptions()
	o.TileSize = -1
	if err := o.validate(); err == nil {
		t.Error("validate accepted negative TileSize")
	}
	o.TileSize = 0
	if err := o.validate(); err != nil {
		t.Errorf("zero TileSize should be valid (default): %v", err)
	}
	if got := o.tileSize(); got != defaultTileSize {
		t.Errorf("tileSize() = %d, want default %d", got, defaultTileSize)
	}
	o.TileSize = 4
	if got := o.tileSize(); got != 4 {
		t.Errorf("tileSize() = %d, want 4", got)
	}
}

package rmcrt

import (
	"context"
	"fmt"
	"math"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
)

// Spectral RMCRT — the paper's stated future work, implemented:
// "Though a method for modeling spectral effects has been considered,
// currently we are using a mean absorption coefficient approximation
// ... Adding spectral frequencies to RMCRT would entail adding a loop
// over wave-lengths, η and is part of future work."
//
// This file adds that loop as a band (box) model: the spectrum is
// partitioned into K bands, each with its own absorption coefficient
// field κ_k and its own fraction w_k(T) of the blackbody emissive
// power. The banded divergence of the heat flux is the sum over bands
//
//	divQ = Σ_k 4π κ_k ( w_k σT⁴/π − mean sumI_k )
//
// which reduces exactly to the gray solution when K = 1 (a property
// the tests assert), and reproduces the qualitative non-gray effect:
// transparent-window bands let radiation escape that a gray mean
// coefficient would hold in.

// Band is one spectral band of a box model.
type Band struct {
	// Name labels the band (e.g. "CO2 4.3um").
	Name string
	// Abskg is the band's absorption coefficient field over the
	// finest-level ROI (coarser levels reuse the gray coarsening of the
	// per-band field supplied in SpectralLevelData).
	Abskg *field.CC[float64]
	// EmissiveFraction is the fraction w_k of the total blackbody
	// emissive power radiated in this band; the fractions over all
	// bands must sum to 1 (gray walls share the same split).
	EmissiveFraction float64
}

// SpectralDomain carries per-band absorption data for every level.
// Levels mirror Domain.Levels: index 0 is the coarsest. Each level's
// Bands slice must have the same length and ordering.
type SpectralDomain struct {
	// Base supplies the grid geometry, cell types and the (gray)
	// σT⁴/π field shared by all bands.
	Base *Domain
	// LevelBands[li][k] is band k's absorption field on level li,
	// windowed over the same ROI as Base.Levels[li].
	LevelBands [][]Band
}

// Validate checks the spectral configuration.
func (s *SpectralDomain) Validate() error {
	if s.Base == nil {
		return fmt.Errorf("rmcrt: spectral domain has no base domain")
	}
	if err := s.Base.Validate(); err != nil {
		return err
	}
	if len(s.LevelBands) != len(s.Base.Levels) {
		return fmt.Errorf("rmcrt: %d band levels for %d grid levels", len(s.LevelBands), len(s.Base.Levels))
	}
	var nBands int
	for li, bands := range s.LevelBands {
		if li == 0 {
			nBands = len(bands)
			if nBands == 0 {
				return fmt.Errorf("rmcrt: no spectral bands")
			}
		} else if len(bands) != nBands {
			return fmt.Errorf("rmcrt: level %d has %d bands, level 0 has %d", li, len(bands), nBands)
		}
		for k, b := range bands {
			if b.Abskg == nil {
				return fmt.Errorf("rmcrt: band %d on level %d missing abskg", k, li)
			}
			roi := s.Base.Levels[li].ROI
			if b.Abskg.Box().Intersect(roi) != roi {
				return fmt.Errorf("rmcrt: band %d window %v does not cover level %d ROI %v",
					k, b.Abskg.Box(), li, roi)
			}
		}
	}
	sum := 0.0
	for _, b := range s.LevelBands[0] {
		sum += b.EmissiveFraction
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("rmcrt: emissive fractions sum to %g, want 1", sum)
	}
	return nil
}

// bandView returns a Domain whose absorption on every level is band
// k's, and whose emission is scaled by the band's emissive fraction.
// The view shares storage with the base domain except for the scaled
// emission fields, which are built once per band.
func (s *SpectralDomain) bandView(k int) *Domain {
	levels := make([]LevelData, len(s.Base.Levels))
	w := s.LevelBands[0][k].EmissiveFraction
	for li := range levels {
		base := s.Base.Levels[li]
		scaled := field.NewCC[float64](base.SigmaT4OverPi.Box())
		src := base.SigmaT4OverPi.Data()
		dst := scaled.Data()
		for i := range src {
			dst[i] = w * src[i]
		}
		levels[li] = LevelData{
			Level:         base.Level,
			ROI:           base.ROI,
			Abskg:         s.LevelBands[li][k].Abskg,
			SigmaT4OverPi: scaled,
			CellType:      base.CellType,
		}
	}
	return &Domain{Levels: levels}
}

// SolveRegionSpectral computes the band-summed divergence of the heat
// flux over region: the wavelength loop of the paper's future work.
// Wall emission in each band is scaled by the same emissive fraction
// (gray walls). The default path marches all K bands through the
// wavefront batch over shared ray geometry (spectral_batch.go); with
// scattering the bands are solved independently on band-offset
// streams. Either way results are deterministic for a given seed.
func (s *SpectralDomain) SolveRegionSpectral(region grid.Box, opts *Options) (*field.CC[float64], error) {
	return s.SolveRegionSpectralCtx(context.Background(), region, opts)
}

// solveSpectralBands is the independent-band fallback: one gray solve
// per band on a band-offset stream, summed. It supports trace-time RNG
// draws (scattering), which the fused batch path cannot reproduce.
// Inputs are assumed validated; ctx is checked between band solves and
// inside each one.
func (s *SpectralDomain) solveSpectralBands(ctx context.Context, region grid.Box, opts *Options) (*field.CC[float64], error) {
	total := field.NewCC[float64](region)
	for k := range s.LevelBands[0] {
		view := s.bandView(k)
		bandOpts := *opts
		bandOpts.Seed = opts.Seed + uint64(k)*0x9e3779b97f4a7c15
		bandOpts.WallSigmaT4 = opts.WallSigmaT4 * s.LevelBands[0][k].EmissiveFraction
		out, err := view.SolveRegionCtx(ctx, region, &bandOpts)
		if err != nil {
			return nil, fmt.Errorf("rmcrt: band %d (%s): %w", k, s.LevelBands[0][k].Name, err)
		}
		td, od := total.Data(), out.Data()
		for i := range td {
			td[i] += od[i]
		}
		// Aggregate instrumentation into the base domain counters.
		s.Base.Steps.Add(view.Steps.Load())
		s.Base.Rays.Add(view.Rays.Load())
	}
	return total, nil
}

// NewGrayAsSpectral wraps an existing gray domain as a one-band
// spectral domain — the identity configuration used to validate the
// wavelength loop.
func NewGrayAsSpectral(d *Domain) *SpectralDomain {
	lb := make([][]Band, len(d.Levels))
	for li := range d.Levels {
		lb[li] = []Band{{Name: "gray", Abskg: d.Levels[li].Abskg, EmissiveFraction: 1}}
	}
	return &SpectralDomain{Base: d, LevelBands: lb}
}

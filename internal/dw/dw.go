// Package dw implements a miniature of Uintah's "on-demand"
// DataWarehouse: the per-timestep repository through which tasks read
// and write grid variables. Tasks never exchange data directly — they
// declare requires/computes against the warehouse, and the
// infrastructure materializes ghost windows ("the illusion it has
// access to memory it does not actually own"), including the global
// halo ("infinite ghost cells") that RMCRT requires on coarse radiation
// levels.
package dw

import (
	"fmt"
	"sync"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
)

// GhostGlobal requests a whole-level window — the paper's "infinite
// ghost cells" used for the coarse radiation properties.
const GhostGlobal = -1

// Key identifies a per-patch variable instance.
type Key struct {
	Label string
	Patch int
}

// LevelKey identifies a per-level (whole-domain) variable instance.
type LevelKey struct {
	Label string
	Level int
}

// DW is one generation of the warehouse (Uintah keeps an "old" and
// "new" DW per timestep). All methods are safe for concurrent use by
// scheduler workers.
type DW struct {
	mu         sync.RWMutex
	ccVars     map[Key]*field.CC[float64]
	ctVars     map[Key]*field.CC[field.CellType]
	levelCC    map[LevelKey]*field.CC[float64]
	levelCT    map[LevelKey]*field.CC[field.CellType]
	generation int
}

// New returns an empty warehouse for the given generation number.
func New(generation int) *DW {
	return &DW{
		ccVars:     make(map[Key]*field.CC[float64]),
		ctVars:     make(map[Key]*field.CC[field.CellType]),
		levelCC:    make(map[LevelKey]*field.CC[float64]),
		levelCT:    make(map[LevelKey]*field.CC[field.CellType]),
		generation: generation,
	}
}

// Generation returns the warehouse generation (timestep) number.
func (d *DW) Generation() int { return d.generation }

// PutCC stores a float64 cell-centered variable for (label, patch).
// Re-putting an existing key is an error in Uintah (variables are
// write-once per generation) and panics here.
func (d *DW) PutCC(label string, patch int, v *field.CC[float64]) {
	d.mu.Lock()
	defer d.mu.Unlock()
	k := Key{label, patch}
	if _, dup := d.ccVars[k]; dup {
		panic(fmt.Sprintf("dw: duplicate PutCC %v in generation %d", k, d.generation))
	}
	d.ccVars[k] = v
}

// GetCC retrieves the variable stored for (label, patch).
func (d *DW) GetCC(label string, patch int) (*field.CC[float64], error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, ok := d.ccVars[Key{label, patch}]
	if !ok {
		return nil, fmt.Errorf("dw: no variable %q on patch %d in generation %d", label, patch, d.generation)
	}
	return v, nil
}

// HasCC reports whether (label, patch) exists.
func (d *DW) HasCC(label string, patch int) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.ccVars[Key{label, patch}]
	return ok
}

// PutCellType stores a cell-type variable for (label, patch).
func (d *DW) PutCellType(label string, patch int, v *field.CC[field.CellType]) {
	d.mu.Lock()
	defer d.mu.Unlock()
	k := Key{label, patch}
	if _, dup := d.ctVars[k]; dup {
		panic(fmt.Sprintf("dw: duplicate PutCellType %v in generation %d", k, d.generation))
	}
	d.ctVars[k] = v
}

// GetCellType retrieves the cell-type variable for (label, patch).
func (d *DW) GetCellType(label string, patch int) (*field.CC[field.CellType], error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, ok := d.ctVars[Key{label, patch}]
	if !ok {
		return nil, fmt.Errorf("dw: no celltype %q on patch %d in generation %d", label, patch, d.generation)
	}
	return v, nil
}

// PutLevelCC stores a whole-level float64 variable — the host-side level
// database entry for shared radiative properties.
func (d *DW) PutLevelCC(label string, level int, v *field.CC[float64]) {
	d.mu.Lock()
	defer d.mu.Unlock()
	k := LevelKey{label, level}
	if _, dup := d.levelCC[k]; dup {
		panic(fmt.Sprintf("dw: duplicate PutLevelCC %v in generation %d", k, d.generation))
	}
	d.levelCC[k] = v
}

// GetLevelCC retrieves a whole-level float64 variable.
func (d *DW) GetLevelCC(label string, level int) (*field.CC[float64], error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, ok := d.levelCC[LevelKey{label, level}]
	if !ok {
		return nil, fmt.Errorf("dw: no level variable %q on level %d in generation %d", label, level, d.generation)
	}
	return v, nil
}

// PutLevelCellType stores a whole-level cell-type variable.
func (d *DW) PutLevelCellType(label string, level int, v *field.CC[field.CellType]) {
	d.mu.Lock()
	defer d.mu.Unlock()
	k := LevelKey{label, level}
	if _, dup := d.levelCT[k]; dup {
		panic(fmt.Sprintf("dw: duplicate PutLevelCellType %v in generation %d", k, d.generation))
	}
	d.levelCT[k] = v
}

// GetLevelCellType retrieves a whole-level cell-type variable.
func (d *DW) GetLevelCellType(label string, level int) (*field.CC[field.CellType], error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, ok := d.levelCT[LevelKey{label, level}]
	if !ok {
		return nil, fmt.Errorf("dw: no level celltype %q on level %d in generation %d", label, level, d.generation)
	}
	return v, nil
}

// NumVars returns the count of stored per-patch and per-level variables,
// for accounting tests.
func (d *DW) NumVars() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.ccVars) + len(d.ctVars) + len(d.levelCC) + len(d.levelCT)
}

// GatherWindow materializes a float64 variable over an arbitrary window
// of a level by copying from every stored patch variable that overlaps
// it. The window is clipped to the level bounds. It fails if any clipped
// cell is not covered by a stored patch variable — a missing ghost
// dependency, which in Uintah means the task graph was mis-specified.
//
// ghost == GhostGlobal callers should use GatherLevel instead.
func (d *DW) GatherWindow(label string, lvl *grid.Level, window grid.Box) (*field.CC[float64], error) {
	clipped := window.Intersect(lvl.IndexBox())
	if clipped.Empty() {
		return nil, fmt.Errorf("dw: window %v does not intersect level %d", window, lvl.Index)
	}
	out := field.NewCC[float64](clipped)
	covered := 0
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, p := range lvl.Patches {
		overlap := p.Cells.Intersect(clipped)
		if overlap.Empty() {
			continue
		}
		v, ok := d.ccVars[Key{label, p.ID}]
		if !ok {
			return nil, fmt.Errorf("dw: gather %q needs patch %d which is absent", label, p.ID)
		}
		out.CopyRegion(v, overlap)
		covered += overlap.Volume()
	}
	if covered != clipped.Volume() {
		return nil, fmt.Errorf("dw: gather %q covered %d of %d cells", label, covered, clipped.Volume())
	}
	return out, nil
}

// GatherLevel materializes the whole level for label — the "infinite
// ghost cell" gather RMCRT issues on coarse radiation levels when the
// level database entry has not been constructed yet.
func (d *DW) GatherLevel(label string, lvl *grid.Level) (*field.CC[float64], error) {
	return d.GatherWindow(label, lvl, lvl.IndexBox())
}

// GatherWindowCellType is GatherWindow for cell-type variables.
func (d *DW) GatherWindowCellType(label string, lvl *grid.Level, window grid.Box) (*field.CC[field.CellType], error) {
	clipped := window.Intersect(lvl.IndexBox())
	if clipped.Empty() {
		return nil, fmt.Errorf("dw: window %v does not intersect level %d", window, lvl.Index)
	}
	out := field.NewCC[field.CellType](clipped)
	covered := 0
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, p := range lvl.Patches {
		overlap := p.Cells.Intersect(clipped)
		if overlap.Empty() {
			continue
		}
		v, ok := d.ctVars[Key{label, p.ID}]
		if !ok {
			return nil, fmt.Errorf("dw: gather celltype %q needs patch %d which is absent", label, p.ID)
		}
		out.CopyRegion(v, overlap)
		covered += overlap.Volume()
	}
	if covered != clipped.Volume() {
		return nil, fmt.Errorf("dw: gather celltype %q covered %d of %d cells", label, covered, clipped.Volume())
	}
	return out, nil
}

package dw

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
)

// EncodeRegion serializes the cells of region from v into a byte slice
// (little-endian float64s in the canonical z-fastest order). This is
// the payload format for simulated MPI halo and level-gather messages.
func EncodeRegion(v *field.CC[float64], region grid.Box) []byte {
	buf := make([]byte, 8*region.Volume())
	i := 0
	region.ForEach(func(c grid.IntVector) {
		binary.LittleEndian.PutUint64(buf[i:], math.Float64bits(v.At(c)))
		i += 8
	})
	return buf
}

// DecodeRegion deserializes data produced by EncodeRegion into the cells
// of region in v.
func DecodeRegion(v *field.CC[float64], region grid.Box, data []byte) error {
	if len(data) != 8*region.Volume() {
		return fmt.Errorf("dw: payload %d bytes for region of %d cells", len(data), region.Volume())
	}
	i := 0
	region.ForEach(func(c grid.IntVector) {
		v.Set(c, math.Float64frombits(binary.LittleEndian.Uint64(data[i:])))
		i += 8
	})
	return nil
}

// EncodeRegionCellType serializes cell types (one byte per cell).
func EncodeRegionCellType(v *field.CC[field.CellType], region grid.Box) []byte {
	buf := make([]byte, region.Volume())
	i := 0
	region.ForEach(func(c grid.IntVector) {
		buf[i] = byte(v.At(c))
		i++
	})
	return buf
}

// DecodeRegionCellType deserializes EncodeRegionCellType payloads.
func DecodeRegionCellType(v *field.CC[field.CellType], region grid.Box, data []byte) error {
	if len(data) != region.Volume() {
		return fmt.Errorf("dw: celltype payload %d bytes for region of %d cells", len(data), region.Volume())
	}
	i := 0
	region.ForEach(func(c grid.IntVector) {
		v.Set(c, field.CellType(data[i]))
		i++
	})
	return nil
}

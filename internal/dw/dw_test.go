package dw

import (
	"testing"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/mathutil"
)

func testGrid(t testing.TB) *grid.Grid {
	t.Helper()
	g, err := grid.New(mathutil.V3(0, 0, 0), mathutil.V3(1, 1, 1),
		grid.Spec{Resolution: grid.Uniform(8), PatchSize: grid.Uniform(4)},  // coarse: 8 patches
		grid.Spec{Resolution: grid.Uniform(16), PatchSize: grid.Uniform(4)}, // fine: 64 patches
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fillLevel stores a patch variable for every patch of level li with a
// position-coded value.
func fillLevel(d *DW, g *grid.Grid, li int, label string) {
	for _, p := range g.Levels[li].Patches {
		v := field.NewCC[float64](p.Cells)
		v.FillFunc(func(c grid.IntVector) float64 {
			return float64(c.X*10000 + c.Y*100 + c.Z)
		})
		d.PutCC(label, p.ID, v)
	}
}

func TestPutGetCC(t *testing.T) {
	g := testGrid(t)
	d := New(1)
	p := g.Levels[0].Patches[0]
	v := field.NewCC[float64](p.Cells)
	v.Fill(7)
	d.PutCC("abskg", p.ID, v)
	got, err := d.GetCC("abskg", p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(grid.IV(0, 0, 0)) != 7 {
		t.Error("round trip value wrong")
	}
	if !d.HasCC("abskg", p.ID) || d.HasCC("abskg", 999) {
		t.Error("HasCC wrong")
	}
	if _, err := d.GetCC("missing", p.ID); err == nil {
		t.Error("missing variable should error")
	}
	if d.Generation() != 1 {
		t.Error("generation wrong")
	}
}

func TestDuplicatePutPanics(t *testing.T) {
	g := testGrid(t)
	d := New(0)
	p := g.Levels[0].Patches[0]
	d.PutCC("x", p.ID, field.NewCC[float64](p.Cells))
	defer func() {
		if recover() == nil {
			t.Error("duplicate PutCC should panic (write-once semantics)")
		}
	}()
	d.PutCC("x", p.ID, field.NewCC[float64](p.Cells))
}

func TestCellTypeStorage(t *testing.T) {
	g := testGrid(t)
	d := New(0)
	p := g.Levels[0].Patches[0]
	ct := field.NewCC[field.CellType](p.Cells)
	ct.Set(grid.IV(0, 0, 0), field.Boundary)
	d.PutCellType("cellType", p.ID, ct)
	got, err := d.GetCellType("cellType", p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(grid.IV(0, 0, 0)) != field.Boundary {
		t.Error("cell type round trip wrong")
	}
}

func TestLevelVars(t *testing.T) {
	g := testGrid(t)
	d := New(0)
	lv := field.NewCC[float64](g.Levels[0].IndexBox())
	lv.Fill(3)
	d.PutLevelCC("abskg", 0, lv)
	got, err := d.GetLevelCC("abskg", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(grid.IV(4, 4, 4)) != 3 {
		t.Error("level var wrong")
	}
	if _, err := d.GetLevelCC("abskg", 1); err == nil {
		t.Error("missing level var should error")
	}
	ct := field.NewCC[field.CellType](g.Levels[0].IndexBox())
	d.PutLevelCellType("cellType", 0, ct)
	if _, err := d.GetLevelCellType("cellType", 0); err != nil {
		t.Error(err)
	}
}

func TestGatherWindowAcrossPatches(t *testing.T) {
	g := testGrid(t)
	d := New(0)
	fillLevel(d, g, 1, "T")
	lvl := g.Levels[1]
	// A window spanning the center of the level crosses 8 patches.
	window := grid.NewBox(grid.IV(2, 2, 2), grid.IV(7, 7, 7))
	got, err := d.GatherWindow("T", lvl, window)
	if err != nil {
		t.Fatal(err)
	}
	window.ForEach(func(c grid.IntVector) {
		want := float64(c.X*10000 + c.Y*100 + c.Z)
		if got.At(c) != want {
			t.Fatalf("gathered value at %v = %v, want %v", c, got.At(c), want)
		}
	})
}

func TestGatherWindowClipsToLevel(t *testing.T) {
	g := testGrid(t)
	d := New(0)
	fillLevel(d, g, 1, "T")
	lvl := g.Levels[1]
	// Ghost window pokes outside the domain; it must be clipped.
	window := lvl.Patches[0].Cells.Grow(2)
	got, err := d.GatherWindow("T", lvl, window)
	if err != nil {
		t.Fatal(err)
	}
	if got.Box() != window.Intersect(lvl.IndexBox()) {
		t.Errorf("gather box = %v", got.Box())
	}
}

func TestGatherMissingPatchFails(t *testing.T) {
	g := testGrid(t)
	d := New(0)
	lvl := g.Levels[1]
	// Only patch 0's variable present; a window crossing into the
	// neighbour must fail loudly.
	p0 := lvl.Patches[0]
	d.PutCC("T", p0.ID, field.NewCC[float64](p0.Cells))
	if _, err := d.GatherWindow("T", lvl, p0.Cells.Grow(1)); err == nil {
		t.Error("gather with a missing neighbour should fail")
	}
}

func TestGatherLevelIsInfiniteGhost(t *testing.T) {
	g := testGrid(t)
	d := New(0)
	fillLevel(d, g, 0, "sigmaT4")
	got, err := d.GatherLevel("sigmaT4", g.Levels[0])
	if err != nil {
		t.Fatal(err)
	}
	if got.Box() != g.Levels[0].IndexBox() {
		t.Errorf("GatherLevel box = %v", got.Box())
	}
}

func TestGatherWindowCellType(t *testing.T) {
	g := testGrid(t)
	d := New(0)
	lvl := g.Levels[0]
	for _, p := range lvl.Patches {
		v := field.NewCC[field.CellType](p.Cells)
		v.Fill(field.Flow)
		d.PutCellType("cellType", p.ID, v)
	}
	got, err := d.GatherWindowCellType("cellType", lvl, lvl.IndexBox())
	if err != nil {
		t.Fatal(err)
	}
	if got.At(grid.IV(7, 7, 7)) != field.Flow {
		t.Error("gathered cell type wrong")
	}
	if _, err := d.GatherWindowCellType("missing", lvl, lvl.IndexBox()); err == nil {
		t.Error("missing celltype gather should fail")
	}
}

func TestGatherEmptyWindowFails(t *testing.T) {
	g := testGrid(t)
	d := New(0)
	win := grid.NewBox(grid.IV(100, 100, 100), grid.IV(101, 101, 101))
	if _, err := d.GatherWindow("T", g.Levels[0], win); err == nil {
		t.Error("disjoint window should fail")
	}
}

func TestNumVars(t *testing.T) {
	g := testGrid(t)
	d := New(0)
	fillLevel(d, g, 0, "a")
	d.PutLevelCC("b", 0, field.NewCC[float64](g.Levels[0].IndexBox()))
	if got := d.NumVars(); got != 9 {
		t.Errorf("NumVars = %d, want 9", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	b := grid.NewBox(grid.IV(2, 3, 4), grid.IV(6, 6, 6))
	v := field.NewCC[float64](b)
	v.FillFunc(func(c grid.IntVector) float64 { return float64(c.X) + 0.5*float64(c.Y) - float64(c.Z)/3 })
	region := grid.NewBox(grid.IV(3, 3, 4), grid.IV(5, 6, 6))
	data := EncodeRegion(v, region)
	if len(data) != 8*region.Volume() {
		t.Fatalf("payload size %d", len(data))
	}
	w := field.NewCC[float64](b)
	if err := DecodeRegion(w, region, data); err != nil {
		t.Fatal(err)
	}
	region.ForEach(func(c grid.IntVector) {
		if w.At(c) != v.At(c) {
			t.Fatalf("codec mismatch at %v", c)
		}
	})
	if err := DecodeRegion(w, region, data[:8]); err == nil {
		t.Error("short payload should error")
	}
}

func TestCellTypeCodecRoundTrip(t *testing.T) {
	b := grid.NewBox(grid.IV(0, 0, 0), grid.IV(4, 4, 4))
	v := field.NewCC[field.CellType](b)
	v.Set(grid.IV(1, 2, 3), field.Boundary)
	v.Set(grid.IV(2, 2, 2), field.Intrusion)
	data := EncodeRegionCellType(v, b)
	w := field.NewCC[field.CellType](b)
	if err := DecodeRegionCellType(w, b, data); err != nil {
		t.Fatal(err)
	}
	b.ForEach(func(c grid.IntVector) {
		if w.At(c) != v.At(c) {
			t.Fatalf("celltype codec mismatch at %v", c)
		}
	})
	if err := DecodeRegionCellType(w, b, data[:3]); err == nil {
		t.Error("short celltype payload should error")
	}
}

package simmpi

import (
	"fmt"
	"testing"
)

// pollDone spins Test (which pumps the fault plane's clock) until the
// request completes or the poll budget runs out.
func pollDone(r *Request, budget int) bool {
	for i := 0; i < budget; i++ {
		if r.Test() {
			return true
		}
	}
	return false
}

// TestFaultDecisionsDeterministic: the per-message verdict is a pure
// function of (seed, src, dst, tag, seq) — the chaos invariant's "same
// seed => same fault sequence" leg.
func TestFaultDecisionsDeterministic(t *testing.T) {
	mk := func(seed uint64) *FaultPlan {
		return &FaultPlan{Seed: seed, DelayFrac: 0.3, DupFrac: 0.2, DropFrac: 0.1}
	}
	a, b := mk(7), mk(7)
	other := mk(8)
	differs := false
	for src := 0; src < 3; src++ {
		for tag := 0; tag < 5; tag++ {
			for seq := int64(0); seq < 40; seq++ {
				actA, delayA := a.Decide(src, 1, tag, seq)
				actB, delayB := b.Decide(src, 1, tag, seq)
				if actA != actB || delayA != delayB {
					t.Fatalf("seed 7 disagrees with itself at (%d,%d,%d): %s/%d vs %s/%d",
						src, tag, seq, actA, delayA, actB, delayB)
				}
				if actO, delayO := other.Decide(src, 1, tag, seq); actO != actA || delayO != delayA {
					differs = true
				}
			}
		}
	}
	if !differs {
		t.Error("seeds 7 and 8 produced identical fault sequences over 600 messages")
	}
}

// TestDelayAndDuplicateAreSurvivable: a delay+duplicate schedule must
// deliver every payload exactly once, in channel order, with duplicates
// discarded — the property that makes such schedules survivable.
func TestDelayAndDuplicateAreSurvivable(t *testing.T) {
	c := NewComm(2)
	c.SetFaultPlan(&FaultPlan{Seed: 42, DelayFrac: 0.5, DupFrac: 0.4, MaxDelayTicks: 16})

	const perTag, tags = 8, 4
	var reqs []*Request
	for tag := 0; tag < tags; tag++ {
		for i := 0; i < perTag; i++ {
			c.Isend(0, 1, tag, []byte(fmt.Sprintf("t%d-m%d", tag, i)))
		}
		for i := 0; i < perTag; i++ {
			reqs = append(reqs, c.Irecv(1, 0, tag))
		}
	}
	for i, r := range reqs {
		if !pollDone(r, 10000) {
			t.Fatalf("recv %d never completed under a survivable schedule", i)
		}
	}
	// Non-overtaking survives the faults: payloads arrive in per-tag
	// send order.
	for tag := 0; tag < tags; tag++ {
		for i := 0; i < perTag; i++ {
			want := fmt.Sprintf("t%d-m%d", tag, i)
			if got := string(reqs[tag*perTag+i].Data()); got != want {
				t.Fatalf("tag %d recv %d: got %q want %q", tag, i, got, want)
			}
		}
	}
	st := c.FaultStats()
	if st.Delayed == 0 || st.Duplicated == 0 {
		t.Errorf("schedule injected nothing: %+v", st)
	}
	if st.Dropped != 0 || st.DeadLetter != 0 {
		t.Errorf("survivable schedule dropped traffic: %+v", st)
	}
	// Trailing duplicate copies are the only thing still in flight;
	// flushing them must leave the mailboxes clean.
	c.FlushDelayed()
	if n := c.PendingDelayed(); n != 0 {
		t.Errorf("%d messages still held after flush", n)
	}
	if n := c.PendingUnexpected(1); n != 0 {
		t.Errorf("%d unexpected messages leaked (duplicates not deduped)", n)
	}
	if got := c.FaultStats().Deduped; got != st.Duplicated {
		t.Errorf("deduped %d of %d duplicated deliveries", got, st.Duplicated)
	}
}

// TestDroppedMessageNeverArrivesAndCancelReclaims: a dropped message
// leaves its receive pending forever; Cancel reclaims the posted
// request so shutdown accounting sees no leak.
func TestDroppedMessageNeverArrivesAndCancelReclaims(t *testing.T) {
	c := NewComm(2)
	c.SetFaultPlan(&FaultPlan{Seed: 1, DropFrac: 1})
	c.Isend(0, 1, 5, []byte("lost"))
	r := c.Irecv(1, 0, 5)
	if pollDone(r, 2000) {
		t.Fatal("receive completed although every message is dropped")
	}
	if st := c.FaultStats(); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}
	if c.PendingPosted(1) != 1 {
		t.Fatalf("posted = %d, want 1", c.PendingPosted(1))
	}
	if !c.Cancel(r) {
		t.Fatal("Cancel refused a pending receive")
	}
	if c.PendingPosted(1) != 0 {
		t.Error("cancelled receive still posted")
	}
	if !r.Cancelled() {
		t.Error("request does not report cancellation")
	}
	if c.Cancel(r) {
		t.Error("Cancel succeeded twice on one request")
	}
	// A completed receive cannot be cancelled.
	c2 := NewComm(2)
	c2.Isend(0, 1, 0, []byte("x"))
	done := c2.Irecv(1, 0, 0)
	if c2.Cancel(done) {
		t.Error("Cancel succeeded on a matched receive")
	}
	if done.Cancelled() {
		t.Error("matched receive reports cancellation")
	}
}

// TestKilledRankGoesSilent: after the kill threshold the rank's
// messages (outbound and inbound) vanish, observable only as missing
// traffic.
func TestKilledRankGoesSilent(t *testing.T) {
	c := NewComm(3)
	c.SetFaultPlan(&FaultPlan{Seed: 3, Kills: map[int]int64{1: 2}})

	// First two sends from rank 1 get through.
	c.Isend(1, 0, 0, []byte("a"))
	c.Isend(1, 0, 1, []byte("b"))
	if !pollDone(c.Irecv(0, 1, 0), 100) || !pollDone(c.Irecv(0, 1, 1), 100) {
		t.Fatal("pre-kill messages did not arrive")
	}
	// The third send crosses the threshold: rank 1 is dead.
	c.Isend(1, 0, 2, []byte("c"))
	if pollDone(c.Irecv(0, 1, 2), 500) {
		t.Fatal("post-kill send arrived")
	}
	// Inbound traffic to the dead rank vanishes too.
	c.Isend(2, 1, 3, []byte("d"))
	if pollDone(c.Irecv(1, 2, 3), 500) {
		t.Fatal("send to a dead rank arrived")
	}
	if st := c.FaultStats(); st.DeadLetter != 2 {
		t.Errorf("dead letters = %d, want 2", st.DeadLetter)
	}
}

// TestStalledRankRecovers: a stall is a long finite delay — traffic
// resumes and completes, unlike a kill.
func TestStalledRankRecovers(t *testing.T) {
	c := NewComm(2)
	c.SetFaultPlan(&FaultPlan{Seed: 9, Stalls: map[int]Stall{0: {After: 1, Ticks: 200}}})
	c.Isend(0, 1, 0, []byte("before"))
	c.Isend(0, 1, 1, []byte("stalled"))
	r0 := c.Irecv(1, 0, 0)
	r1 := c.Irecv(1, 0, 1)
	if !pollDone(r0, 100) {
		t.Fatal("pre-stall message did not arrive")
	}
	if r1.Test() {
		t.Fatal("stalled message arrived instantly")
	}
	if !pollDone(r1, 5000) {
		t.Fatal("stalled message never released")
	}
	if string(r1.Data()) != "stalled" {
		t.Fatalf("stalled payload corrupted: %q", r1.Data())
	}
	if st := c.FaultStats(); st.Delayed != 1 {
		t.Errorf("delayed = %d, want 1", st.Delayed)
	}
}

// TestWaitPollsUnderFaults: Wait must not park forever when completion
// needs clock ticks.
func TestWaitPollsUnderFaults(t *testing.T) {
	c := NewComm(2)
	c.SetFaultPlan(&FaultPlan{Seed: 5, DelayFrac: 1, MaxDelayTicks: 8})
	c.Isend(0, 1, 0, []byte("late"))
	r := c.Irecv(1, 0, 0)
	if st := r.Wait(); st.Count != 4 {
		t.Fatalf("Wait returned count %d", st.Count)
	}
}

// TestSetFaultPlanTwicePanics documents the attach-once contract.
func TestSetFaultPlanTwicePanics(t *testing.T) {
	c := NewComm(1)
	c.SetFaultPlan(&FaultPlan{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("second SetFaultPlan did not panic")
		}
	}()
	c.SetFaultPlan(&FaultPlan{Seed: 2})
}

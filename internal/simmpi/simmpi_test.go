package simmpi

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestSendThenRecv(t *testing.T) {
	c := NewComm(2)
	c.Isend(0, 1, 5, []byte("hello"))
	r := c.Irecv(1, 0, 5)
	if !r.Test() {
		t.Fatal("recv should complete immediately for a buffered message")
	}
	st := r.Status()
	if st.Source != 0 || st.Tag != 5 || st.Count != 5 {
		t.Errorf("status = %+v", st)
	}
	if !bytes.Equal(r.Data(), []byte("hello")) {
		t.Errorf("data = %q", r.Data())
	}
}

func TestRecvThenSend(t *testing.T) {
	c := NewComm(2)
	r := c.Irecv(1, 0, 7)
	if r.Test() {
		t.Fatal("recv completed with no message")
	}
	c.Isend(0, 1, 7, []byte{1, 2, 3})
	if !r.Test() {
		t.Fatal("recv not completed after matching send")
	}
	if st := r.Wait(); st.Count != 3 {
		t.Errorf("count = %d", st.Count)
	}
}

func TestTagMatching(t *testing.T) {
	c := NewComm(2)
	c.Isend(0, 1, 1, []byte("one"))
	c.Isend(0, 1, 2, []byte("two"))
	r2 := c.Irecv(1, 0, 2)
	r1 := c.Irecv(1, 0, 1)
	if string(r2.Data()) != "two" || string(r1.Data()) != "one" {
		t.Errorf("tag matching wrong: %q %q", r1.Data(), r2.Data())
	}
}

func TestNonOvertakingFIFO(t *testing.T) {
	// Messages with the same (source, tag) must be received in send
	// order.
	c := NewComm(2)
	for i := 0; i < 10; i++ {
		c.Isend(0, 1, 3, []byte{byte(i)})
	}
	for i := 0; i < 10; i++ {
		r := c.Irecv(1, 0, 3)
		if !r.Test() {
			t.Fatalf("recv %d incomplete", i)
		}
		if r.Data()[0] != byte(i) {
			t.Fatalf("recv %d got payload %d: overtaking", i, r.Data()[0])
		}
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	c := NewComm(3)
	c.Isend(2, 0, 9, []byte("x"))
	r := c.Irecv(0, AnySource, AnyTag)
	if !r.Test() {
		t.Fatal("wildcard recv did not match")
	}
	if st := r.Status(); st.Source != 2 || st.Tag != 9 {
		t.Errorf("status = %+v", st)
	}
}

func TestWildcardDoesNotMatchWrongTag(t *testing.T) {
	c := NewComm(2)
	r := c.Irecv(1, 0, 4)
	c.Isend(0, 1, 5, []byte("wrong tag"))
	if r.Test() {
		t.Fatal("recv with tag 4 matched a tag-5 message")
	}
	if c.PendingUnexpected(1) != 1 {
		t.Errorf("unexpected queue = %d, want 1", c.PendingUnexpected(1))
	}
	if c.PendingPosted(1) != 1 {
		t.Errorf("posted queue = %d, want 1", c.PendingPosted(1))
	}
}

func TestSendBufferIsCopied(t *testing.T) {
	c := NewComm(2)
	buf := []byte{1, 2, 3}
	c.Isend(0, 1, 0, buf)
	buf[0] = 99 // mutate after send: receiver must see the original
	r := c.Irecv(1, 0, 0)
	if r.Data()[0] != 1 {
		t.Error("Isend did not copy the payload (eager semantics)")
	}
}

func TestTestsome(t *testing.T) {
	c := NewComm(2)
	r1 := c.Irecv(1, 0, 1)
	r2 := c.Irecv(1, 0, 2)
	r3 := c.Irecv(1, 0, 3)
	c.Isend(0, 1, 2, nil)
	got := Testsome([]*Request{r1, r2, r3, nil})
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Testsome = %v, want [1]", got)
	}
}

func TestWaitBlocksUntilSend(t *testing.T) {
	c := NewComm(2)
	r := c.Irecv(1, 0, 0)
	done := make(chan Status)
	go func() { done <- r.Wait() }()
	c.Isend(0, 1, 0, []byte("late"))
	st := <-done
	if st.Count != 4 {
		t.Errorf("count = %d", st.Count)
	}
}

func TestStatsAccounting(t *testing.T) {
	c := NewComm(3)
	c.Isend(0, 1, 0, make([]byte, 100))
	c.Isend(0, 2, 0, make([]byte, 50))
	c.Irecv(1, 0, 0)
	s0 := c.RankStats(0)
	if s0.MessagesSent != 2 || s0.BytesSent != 150 {
		t.Errorf("rank 0 stats = %+v", s0)
	}
	s1 := c.RankStats(1)
	if s1.MessagesRecv != 1 || s1.BytesRecv != 100 {
		t.Errorf("rank 1 stats = %+v", s1)
	}
	tot := c.TotalStats()
	if tot.MessagesSent != 2 || tot.BytesSent != 150 || tot.MessagesRecv != 1 {
		t.Errorf("total stats = %+v", tot)
	}
}

func TestInvalidArgsPanic(t *testing.T) {
	c := NewComm(2)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("bad size", func() { NewComm(0) })
	mustPanic("bad src", func() { c.Isend(-1, 0, 0, nil) })
	mustPanic("bad dst", func() { c.Isend(0, 2, 0, nil) })
	mustPanic("bad tag", func() { c.Isend(0, 1, -1, nil) })
	mustPanic("bad recv rank", func() { c.Irecv(5, 0, 0) })
}

// TestThreadMultiple hammers one communicator from many goroutines, the
// MPI_THREAD_MULTIPLE pattern Uintah relies on: every worker posts its
// own sends and receives. Run with -race.
func TestThreadMultiple(t *testing.T) {
	const (
		ranks       = 8
		perPair     = 50
		payloadSize = 32
	)
	c := NewComm(ranks)
	var wg sync.WaitGroup
	// Senders: every rank sends perPair messages to every other rank.
	for src := 0; src < ranks; src++ {
		wg.Add(1)
		go func(src int) {
			defer wg.Done()
			for dst := 0; dst < ranks; dst++ {
				if dst == src {
					continue
				}
				for k := 0; k < perPair; k++ {
					payload := make([]byte, payloadSize)
					payload[0] = byte(src)
					c.Isend(src, dst, k, payload)
				}
			}
		}(src)
	}
	// Receivers: each rank posts matching receives from several
	// goroutines at once.
	recvd := make([]int, ranks)
	var mu sync.Mutex
	for dst := 0; dst < ranks; dst++ {
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			var reqs []*Request
			for src := 0; src < ranks; src++ {
				if src == dst {
					continue
				}
				for k := 0; k < perPair; k++ {
					reqs = append(reqs, c.Irecv(dst, src, k))
				}
			}
			WaitAll(reqs)
			mu.Lock()
			recvd[dst] += len(reqs)
			mu.Unlock()
		}(dst)
	}
	wg.Wait()
	want := (ranks - 1) * perPair
	for dst := 0; dst < ranks; dst++ {
		if recvd[dst] != want {
			t.Errorf("rank %d received %d, want %d", dst, recvd[dst], want)
		}
		if c.PendingUnexpected(dst) != 0 || c.PendingPosted(dst) != 0 {
			t.Errorf("rank %d has pending traffic at shutdown", dst)
		}
	}
	tot := c.TotalStats()
	wantTotal := int64(ranks * (ranks - 1) * perPair)
	if tot.MessagesSent != wantTotal || tot.MessagesRecv != wantTotal {
		t.Errorf("totals = %+v, want %d each", tot, wantTotal)
	}
}

func TestManyRequestsCompleteExactlyOnce(t *testing.T) {
	// A request completed by a racing send is delivered exactly once.
	c := NewComm(2)
	const n = 200
	var reqs []*Request
	for i := 0; i < n; i++ {
		reqs = append(reqs, c.Irecv(1, 0, i))
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Isend(0, 1, i, []byte(fmt.Sprintf("%d", i)))
		}(i)
	}
	wg.Wait()
	for i, r := range reqs {
		if !r.Test() {
			t.Fatalf("request %d incomplete", i)
		}
		if string(r.Data()) != fmt.Sprintf("%d", i) {
			t.Fatalf("request %d payload %q", i, r.Data())
		}
	}
}

// TestRandomTrafficConservation drives random traffic matrices through
// a communicator and checks global conservation: every sent message is
// received exactly once with its payload intact, regardless of posting
// order (quick-check property).
func TestRandomTrafficConservation(t *testing.T) {
	f := func(plan []uint8) bool {
		const ranks = 4
		c := NewComm(ranks)
		type msg struct {
			src, dst, tag int
			body          byte
		}
		var msgs []msg
		for i, b := range plan {
			m := msg{
				src:  int(b) % ranks,
				dst:  int(b>>2) % ranks,
				tag:  i,
				body: b,
			}
			msgs = append(msgs, m)
		}
		// Post receives first for even indices, sends first for odd —
		// exercising both matching paths.
		var reqs []*Request
		for _, m := range msgs {
			if m.tag%2 == 0 {
				reqs = append(reqs, c.Irecv(m.dst, m.src, m.tag))
			} else {
				c.Isend(m.src, m.dst, m.tag, []byte{m.body})
				reqs = append(reqs, nil)
			}
		}
		for i, m := range msgs {
			if m.tag%2 == 0 {
				c.Isend(m.src, m.dst, m.tag, []byte{m.body})
			} else {
				reqs[i] = c.Irecv(m.dst, m.src, m.tag)
			}
		}
		for i, r := range reqs {
			if !r.Test() {
				return false
			}
			if len(r.Data()) != 1 || r.Data()[0] != msgs[i].body {
				return false
			}
		}
		// Conservation: totals match and nothing is left in flight.
		tot := c.TotalStats()
		if tot.MessagesSent != int64(len(msgs)) || tot.MessagesRecv != int64(len(msgs)) {
			return false
		}
		for r := 0; r < ranks; r++ {
			if c.PendingUnexpected(r) != 0 || c.PendingPosted(r) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

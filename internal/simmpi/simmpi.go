// Package simmpi is an in-process message-passing layer with MPI
// semantics: ranks, tags, nonblocking sends and receives returning
// request handles, Test/Testsome/Wait completion, and wildcard matching.
//
// The Go ecosystem has no MPI; this package is the substitution. It
// reproduces exactly the properties the paper's infrastructure work
// depends on:
//
//   - MPI_THREAD_MULTIPLE: any goroutine may post or complete operations
//     on any rank concurrently ("all CPU threads perform their own MPI
//     sends and receives").
//   - Nonblocking request objects whose completion must be polled — the
//     raw material managed by internal/commpool's legacy and wait-free
//     request containers.
//   - Deterministic FIFO matching per (source, tag) channel, matching
//     MPI's non-overtaking rule.
//   - Byte accounting per rank so the communication model can be checked
//     against the paper's message-volume arithmetic.
//
// Sends use buffered (eager) semantics: Isend copies the payload and the
// send request completes immediately, which is how Uintah's small- and
// medium-message traffic behaves on Gemini.
package simmpi

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Wildcards for Irecv matching.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag = -1
)

// Status describes a completed receive: who sent it, with what tag, and
// how many bytes arrived.
type Status struct {
	Source int
	Tag    int
	Count  int
}

// reqKind discriminates send from receive requests.
type reqKind int8

const (
	kindSend reqKind = iota
	kindRecv
)

// Request is a nonblocking operation handle, the analogue of
// MPI_Request. A Request is safe for concurrent Test from many
// goroutines; completion is delivered exactly once.
type Request struct {
	comm *Comm
	kind reqKind

	// Receive matching criteria (kindRecv only).
	rank, source, tag int

	done   atomic.Bool
	doneCh chan struct{}

	mu     sync.Mutex
	data   []byte
	status Status
}

// Test reports whether the operation has completed. It never blocks.
// Under an attached FaultPlan each Test also advances the transport's
// logical clock one tick, so polling loops drive delayed deliveries.
func (r *Request) Test() bool {
	if r.done.Load() {
		return true
	}
	if c := r.comm; c != nil && c.plan != nil {
		c.pump()
	}
	return r.done.Load()
}

// Wait blocks until the operation completes and returns its status.
// Under a FaultPlan it polls (deliveries need clock ticks); otherwise
// it parks on the completion channel.
func (r *Request) Wait() Status {
	if c := r.comm; c != nil && c.plan != nil {
		for !r.Test() {
			runtime.Gosched()
		}
	}
	<-r.doneCh
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Status returns the completion status. It is only meaningful after Test
// has returned true or Wait has returned.
func (r *Request) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Data returns the received payload (kindRecv, after completion) or the
// buffered payload (kindSend).
func (r *Request) Data() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.data
}

func (r *Request) complete(data []byte, st Status) {
	r.mu.Lock()
	r.data = data
	r.status = st
	r.mu.Unlock()
	if r.done.CompareAndSwap(false, true) {
		close(r.doneCh)
	}
}

// envelope is an in-flight message buffered at the destination. seq is
// the per-(source, dst, tag) channel sequence number, assigned and
// consumed only by the fault plane (zero otherwise).
type envelope struct {
	source, tag int
	data        []byte
	seq         int64
}

// mailbox holds a destination rank's unmatched messages and posted
// receives. One mutex per rank keeps cross-rank traffic uncontended.
type mailbox struct {
	mu         sync.Mutex
	unexpected []*envelope // arrival order
	posted     []*Request  // post order
}

// Stats aggregates traffic counters for one rank.
type Stats struct {
	MessagesSent int64
	BytesSent    int64
	MessagesRecv int64
	BytesRecv    int64
}

// Comm is a communicator over Size simulated ranks, the analogue of
// MPI_COMM_WORLD. All methods are safe for concurrent use from any
// goroutine (MPI_THREAD_MULTIPLE).
type Comm struct {
	size  int
	boxes []mailbox

	sentMsgs  []atomic.Int64
	sentBytes []atomic.Int64
	recvMsgs  []atomic.Int64
	recvBytes []atomic.Int64

	collOnce sync.Once
	coll     *collectiveState

	// plan is the optional fault-injection plane (SetFaultPlan). It is
	// written once before any traffic and read-only afterwards.
	plan *FaultPlan
}

// NewComm creates a communicator with size ranks.
func NewComm(size int) *Comm {
	if size <= 0 {
		panic("simmpi: communicator size must be positive")
	}
	return &Comm{
		size:      size,
		boxes:     make([]mailbox, size),
		sentMsgs:  make([]atomic.Int64, size),
		sentBytes: make([]atomic.Int64, size),
		recvMsgs:  make([]atomic.Int64, size),
		recvBytes: make([]atomic.Int64, size),
	}
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

func (c *Comm) checkRank(r int, what string) {
	if r < 0 || r >= c.size {
		panic(fmt.Sprintf("simmpi: %s rank %d out of range [0,%d)", what, r, c.size))
	}
}

// Isend posts a nonblocking send of data from rank src to rank dst with
// the given tag. The payload is copied; the returned request is already
// complete (eager buffered semantics). Tag must be >= 0.
func (c *Comm) Isend(src, dst, tag int, data []byte) *Request {
	c.checkRank(src, "source")
	c.checkRank(dst, "destination")
	if tag < 0 {
		panic("simmpi: Isend tag must be non-negative")
	}
	buf := append([]byte(nil), data...)
	req := &Request{comm: c, kind: kindSend, doneCh: make(chan struct{})}
	req.complete(buf, Status{Source: src, Tag: tag, Count: len(buf)})

	c.sentMsgs[src].Add(1)
	c.sentBytes[src].Add(int64(len(buf)))

	env := &envelope{source: src, tag: tag, data: buf}
	if c.plan != nil {
		// Faulty transport: the plan decides whether (and when) the
		// envelope reaches the destination; the eager send request is
		// complete either way — the sender cannot observe the fault.
		c.faultySend(src, dst, tag, env)
		return req
	}
	c.deliver(dst, env)
	return req
}

// deliver lands env at rank dst: match a posted receive in post order
// (non-overtaking) or buffer it as unexpected.
func (c *Comm) deliver(dst int, env *envelope) {
	box := &c.boxes[dst]
	box.mu.Lock()
	for i, pr := range box.posted {
		if matches(pr, env) {
			box.posted = append(box.posted[:i], box.posted[i+1:]...)
			box.mu.Unlock()
			c.recvMsgs[dst].Add(1)
			c.recvBytes[dst].Add(int64(len(env.data)))
			pr.complete(env.data, Status{Source: env.source, Tag: env.tag, Count: len(env.data)})
			return
		}
	}
	box.unexpected = append(box.unexpected, env)
	box.mu.Unlock()
}

// Irecv posts a nonblocking receive on rank dst for a message from
// source (or AnySource) with tag (or AnyTag). Completion is observed via
// Test/Wait; the payload is available from Data afterwards.
func (c *Comm) Irecv(dst, source, tag int) *Request {
	c.checkRank(dst, "destination")
	if source != AnySource {
		c.checkRank(source, "source")
	}
	req := &Request{
		comm: c, kind: kindRecv, rank: dst,
		source: source, tag: tag,
		doneCh: make(chan struct{}),
	}
	box := &c.boxes[dst]
	box.mu.Lock()
	// Try to match an already-arrived message, in arrival order.
	for i, env := range box.unexpected {
		if matches(req, env) {
			box.unexpected = append(box.unexpected[:i], box.unexpected[i+1:]...)
			box.mu.Unlock()
			c.recvMsgs[dst].Add(1)
			c.recvBytes[dst].Add(int64(len(env.data)))
			req.complete(env.data, Status{Source: env.source, Tag: env.tag, Count: len(env.data)})
			return req
		}
	}
	box.posted = append(box.posted, req)
	box.mu.Unlock()
	return req
}

func matches(r *Request, e *envelope) bool {
	if r.source != AnySource && r.source != e.source {
		return false
	}
	if r.tag != AnyTag && r.tag != e.tag {
		return false
	}
	return true
}

// Testsome checks a collection of requests and returns the indices of
// those that have completed — the analogue of MPI_Testsome, used by the
// legacy (pre-improvement) communication record container.
func Testsome(reqs []*Request) []int {
	var idx []int
	for i, r := range reqs {
		if r != nil && r.Test() {
			idx = append(idx, i)
		}
	}
	return idx
}

// WaitAll blocks until every request in reqs has completed.
func WaitAll(reqs []*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// RankStats returns the traffic counters for rank r.
func (c *Comm) RankStats(r int) Stats {
	c.checkRank(r, "stats")
	return Stats{
		MessagesSent: c.sentMsgs[r].Load(),
		BytesSent:    c.sentBytes[r].Load(),
		MessagesRecv: c.recvMsgs[r].Load(),
		BytesRecv:    c.recvBytes[r].Load(),
	}
}

// TotalStats returns traffic counters summed over all ranks.
func (c *Comm) TotalStats() Stats {
	var t Stats
	for r := 0; r < c.size; r++ {
		s := c.RankStats(r)
		t.MessagesSent += s.MessagesSent
		t.BytesSent += s.BytesSent
		t.MessagesRecv += s.MessagesRecv
		t.BytesRecv += s.BytesRecv
	}
	return t
}

// PendingUnexpected returns the number of buffered, unmatched messages at
// rank r — nonzero at shutdown indicates a protocol bug (a leaked
// message, the class of bug the paper's race condition produced).
func (c *Comm) PendingUnexpected(r int) int {
	c.checkRank(r, "pending")
	box := &c.boxes[r]
	box.mu.Lock()
	defer box.mu.Unlock()
	return len(box.unexpected)
}

// PendingPosted returns the number of posted, unmatched receives at rank r.
func (c *Comm) PendingPosted(r int) int {
	c.checkRank(r, "pending")
	box := &c.boxes[r]
	box.mu.Lock()
	defer box.mu.Unlock()
	return len(box.posted)
}

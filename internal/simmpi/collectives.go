package simmpi

import (
	"fmt"
	"sync"
)

// Collective operations. Uintah uses reductions for global timestep
// control (the stable dt is the minimum over all ranks) and barriers
// between task-graph phases. These are built on the same communicator,
// implemented with in-process synchronization: each collective call
// blocks until every rank has arrived, matching MPI's completion
// semantics. Collectives on one communicator may be interleaved with
// point-to-point traffic but successive collectives must be called in
// the same order on all ranks (as in MPI).

// ReduceOp combines two float64 values in an Allreduce.
type ReduceOp func(a, b float64) float64

// Standard reduction operators.
var (
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	OpMin ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
	OpMax ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
)

// collectiveState tracks one in-progress collective round.
type collectiveState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	arrived int
	round   int64
	values  []float64
	gathers [][]byte
	result  float64
}

func (c *Comm) collectives() *collectiveState {
	c.collOnce.Do(func() {
		st := &collectiveState{
			values:  make([]float64, c.size),
			gathers: make([][]byte, c.size),
		}
		st.cond = sync.NewCond(&st.mu)
		c.coll = st
	})
	return c.coll
}

// arrive blocks until all ranks have joined the current round, then
// releases everyone. The last arriving rank runs fn (with the lock
// held) before the release. Returns after the round completes.
func (st *collectiveState) arrive(size int, fn func()) {
	st.mu.Lock()
	defer st.mu.Unlock()
	myRound := st.round
	st.arrived++
	if st.arrived == size {
		if fn != nil {
			fn()
		}
		st.arrived = 0
		st.round++
		st.cond.Broadcast()
		return
	}
	for st.round == myRound {
		st.cond.Wait()
	}
}

// Barrier blocks until every rank of the communicator has called it.
func (c *Comm) Barrier(rank int) {
	c.checkRank(rank, "barrier")
	c.collectives().arrive(c.size, nil)
}

// Allreduce combines each rank's value with op and returns the result
// to every rank. All ranks must call it with the same op.
func (c *Comm) Allreduce(rank int, value float64, op ReduceOp) float64 {
	c.checkRank(rank, "allreduce")
	if op == nil {
		panic("simmpi: Allreduce with nil op")
	}
	st := c.collectives()
	st.mu.Lock()
	st.values[rank] = value
	st.mu.Unlock()
	st.arrive(c.size, func() {
		acc := st.values[0]
		for r := 1; r < c.size; r++ {
			acc = op(acc, st.values[r])
		}
		st.result = acc
	})
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.result
}

// Allgather collects each rank's byte payload and returns the slice of
// all payloads (indexed by rank) to every rank. Payloads are copied.
func (c *Comm) Allgather(rank int, data []byte) [][]byte {
	c.checkRank(rank, "allgather")
	st := c.collectives()
	st.mu.Lock()
	st.gathers[rank] = append([]byte(nil), data...)
	st.mu.Unlock()
	var out [][]byte
	st.arrive(c.size, func() {
		out = nil // assembled below per-rank from the shared state
	})
	st.mu.Lock()
	defer st.mu.Unlock()
	out = make([][]byte, c.size)
	for r := 0; r < c.size; r++ {
		out[r] = append([]byte(nil), st.gathers[r]...)
	}
	return out
}

// String helper for error messages in debugging sessions.
func (c *Comm) String() string { return fmt.Sprintf("comm{size=%d}", c.size) }

package simmpi

import (
	"sync"
	"sync/atomic"
	"testing"
)

// runRanks executes f concurrently for every rank and waits.
func runRanks(size int, f func(rank int)) {
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			f(r)
		}(r)
	}
	wg.Wait()
}

func TestBarrierSynchronizes(t *testing.T) {
	const size = 8
	c := NewComm(size)
	var before, after atomic.Int32
	runRanks(size, func(rank int) {
		before.Add(1)
		c.Barrier(rank)
		// Every rank must have passed "before" by the time any rank is
		// past the barrier.
		if got := before.Load(); got != size {
			t.Errorf("rank %d crossed barrier with only %d arrivals", rank, got)
		}
		after.Add(1)
	})
	if after.Load() != size {
		t.Errorf("after = %d", after.Load())
	}
}

func TestBarrierReusable(t *testing.T) {
	const size = 4
	c := NewComm(size)
	runRanks(size, func(rank int) {
		for i := 0; i < 50; i++ {
			c.Barrier(rank)
		}
	})
}

func TestAllreduceOps(t *testing.T) {
	const size = 6
	c := NewComm(size)
	sums := make([]float64, size)
	mins := make([]float64, size)
	maxs := make([]float64, size)
	runRanks(size, func(rank int) {
		v := float64(rank + 1)
		sums[rank] = c.Allreduce(rank, v, OpSum)
		mins[rank] = c.Allreduce(rank, v, OpMin)
		maxs[rank] = c.Allreduce(rank, v, OpMax)
	})
	for r := 0; r < size; r++ {
		if sums[r] != 21 {
			t.Errorf("rank %d sum = %v, want 21", r, sums[r])
		}
		if mins[r] != 1 {
			t.Errorf("rank %d min = %v, want 1", r, mins[r])
		}
		if maxs[r] != 6 {
			t.Errorf("rank %d max = %v, want 6", r, maxs[r])
		}
	}
}

func TestAllreduceTimestepControl(t *testing.T) {
	// The Uintah use case: global stable dt = min over ranks.
	const size = 4
	c := NewComm(size)
	localDt := []float64{0.01, 0.003, 0.04, 0.0225}
	got := make([]float64, size)
	runRanks(size, func(rank int) {
		got[rank] = c.Allreduce(rank, localDt[rank], OpMin)
	})
	for r := 0; r < size; r++ {
		if got[r] != 0.003 {
			t.Errorf("rank %d dt = %v, want 0.003", r, got[r])
		}
	}
}

func TestAllgather(t *testing.T) {
	const size = 5
	c := NewComm(size)
	results := make([][][]byte, size)
	runRanks(size, func(rank int) {
		payload := []byte{byte(rank), byte(rank * 2)}
		results[rank] = c.Allgather(rank, payload)
	})
	for r := 0; r < size; r++ {
		if len(results[r]) != size {
			t.Fatalf("rank %d gathered %d payloads", r, len(results[r]))
		}
		for s := 0; s < size; s++ {
			p := results[r][s]
			if len(p) != 2 || p[0] != byte(s) || p[1] != byte(s*2) {
				t.Errorf("rank %d: payload from %d = %v", r, s, p)
			}
		}
	}
}

func TestAllgatherPayloadCopied(t *testing.T) {
	const size = 2
	c := NewComm(size)
	out := make([][][]byte, size)
	runRanks(size, func(rank int) {
		buf := []byte{byte(rank)}
		out[rank] = c.Allgather(rank, buf)
		buf[0] = 99 // mutate after the call
	})
	if out[1][0][0] != 0 {
		t.Error("Allgather did not copy the payload")
	}
}

func TestCollectivesRepeatedRounds(t *testing.T) {
	const size = 4
	c := NewComm(size)
	runRanks(size, func(rank int) {
		for i := 0; i < 25; i++ {
			got := c.Allreduce(rank, float64(i), OpMax)
			if got != float64(i) {
				t.Errorf("round %d: allreduce max = %v", i, got)
			}
			c.Barrier(rank)
		}
	})
}

func TestAllreduceNilOpPanics(t *testing.T) {
	c := NewComm(1)
	defer func() {
		if recover() == nil {
			t.Error("nil op should panic")
		}
	}()
	c.Allreduce(0, 1, nil)
}

// Fault injection. The paper's wait-free request pool exists because a
// race in the mutex+Testsome path silently leaked receive buffers under
// adversarial message timing — exactly the regime a benign, in-order
// simulated transport never produces. FaultPlan is a deterministic,
// seeded adversary for that transport: per-message delay, reordering,
// duplication and loss, plus whole-rank stalls and kills, all derived
// from (seed, src, dst, tag, seq) with no wall clock, so the same seed
// always yields the same fault sequence.
//
// Mechanics:
//
//   - Every message on a (src, dst, tag) channel gets a sequence
//     number. Faulty delivery reassembles channel order at the
//     destination (MPI's non-overtaking rule survives the faults), and
//     discards duplicate sequence numbers, so delay/reorder/duplicate
//     schedules are *survivable*: the application observes the exact
//     fault-free payload sequence, only later.
//   - Time is a logical tick: it advances on every send and on every
//     Request.Test poll. Delayed envelopes carry a release tick; polling
//     drains them. No wall clock anywhere.
//   - Dropped messages and dead ranks leave a permanent gap in the
//     channel; receivers can only discover this by bounded polling
//     (commpool's MaxPolls / sched's CommPollBudget), which is the
//     robustness code this plane forces into existence.
package simmpi

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// FaultPlan is a deterministic fault schedule for one Comm. Configure
// it and attach it with Comm.SetFaultPlan before any traffic; it must
// not be mutated afterwards.
type FaultPlan struct {
	// Seed drives every per-message decision.
	Seed uint64

	// DelayFrac, DupFrac and DropFrac are per-message fault
	// probabilities in [0,1], evaluated in the order drop, duplicate,
	// delay (at most one fault per message).
	DelayFrac float64
	DupFrac   float64
	DropFrac  float64

	// MaxDelayTicks bounds the logical-tick delay of delayed messages
	// (and of the trailing copy of duplicated messages). Default 64.
	MaxDelayTicks int64

	// Kills maps rank -> send-event index: once the rank has posted
	// that many sends it is dead — subsequent messages from and to it
	// vanish. A dead rank is only observable through bounded polling.
	Kills map[int]int64

	// Stalls maps rank -> stall window: after the rank has posted
	// After sends, its next sends are held for Ticks logical ticks (a
	// long but finite delay — survivable, unlike a kill).
	Stalls map[int]Stall

	// runtime state (owned by the attached Comm).
	mu      sync.Mutex
	tick    atomic.Int64
	chans   map[chanKey]*channelState
	delayed delayQueue
	dead    []atomic.Bool
	sends   []atomic.Int64

	stats faultCounters
}

// Stall describes one rank's stall window.
type Stall struct {
	// After is the send-event index at which the stall begins.
	After int64
	// Ticks is how many logical ticks each stalled send is held.
	Ticks int64
}

// FaultStats counts what the plan did to the traffic. For a fixed seed
// and workload the counts are reproducible.
type FaultStats struct {
	Delayed    int64 // messages held for a nonzero tick delay
	Dropped    int64 // messages lost by the transport
	Duplicated int64 // messages delivered twice by the transport
	Deduped    int64 // duplicate deliveries discarded at the receiver
	DeadLetter int64 // messages from/to a killed rank
}

type faultCounters struct {
	delayed, dropped, duplicated, deduped, deadLetter atomic.Int64
}

// chanKey identifies one ordered message channel.
type chanKey struct{ src, dst, tag int }

// channelState reassembles one channel's order at the destination.
type channelState struct {
	nextSend int64 // sender side: next sequence number to assign
	nextRecv int64 // receiver side: next sequence number to deliver
	held     []*envelope
}

// delayedEnv is a message waiting for its release tick.
type delayedEnv struct {
	release int64
	order   int64 // insertion order, tie-break for determinism
	dst     int
	env     *envelope
}

// delayQueue is a min-heap on (release, order).
type delayQueue struct {
	items []delayedEnv
	next  int64
}

func (q *delayQueue) push(d delayedEnv) {
	d.order = q.next
	q.next++
	q.items = append(q.items, d)
	sort.Slice(q.items, func(i, j int) bool {
		if q.items[i].release != q.items[j].release {
			return q.items[i].release < q.items[j].release
		}
		return q.items[i].order < q.items[j].order
	})
}

func (q *delayQueue) popReady(tick int64) (delayedEnv, bool) {
	if len(q.items) == 0 || q.items[0].release > tick {
		return delayedEnv{}, false
	}
	d := q.items[0]
	q.items = q.items[1:]
	return d, true
}

// faultAction is the transport's verdict for one message.
type faultAction int

const (
	actDeliver faultAction = iota
	actDelay
	actDrop
	actDuplicate
)

// splitmix64 is the standard SplitMix64 finalizer — the same family the
// tracer's deterministic RNG streams use.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash mixes the message identity into one deterministic word.
func (p *FaultPlan) hash(src, dst, tag int, seq int64) uint64 {
	h := splitmix64(p.Seed ^ 0x6368616f73) // "chaos"
	h = splitmix64(h ^ uint64(src)<<32 ^ uint64(uint32(dst)))
	h = splitmix64(h ^ uint64(tag))
	h = splitmix64(h ^ uint64(seq))
	return h
}

// Decide returns the fault verdict and tick delay for one message,
// purely from the plan's seed and the message identity. Exposed so the
// chaos harness can prove seed-determinism directly.
func (p *FaultPlan) Decide(src, dst, tag int, seq int64) (action string, delay int64) {
	a, d := p.decide(src, dst, tag, seq)
	switch a {
	case actDrop:
		return "drop", 0
	case actDuplicate:
		return "duplicate", d
	case actDelay:
		return "delay", d
	}
	return "deliver", 0
}

func (p *FaultPlan) decide(src, dst, tag int, seq int64) (faultAction, int64) {
	h := p.hash(src, dst, tag, seq)
	u := float64(h>>11) / float64(1<<53)
	maxDelay := p.MaxDelayTicks
	if maxDelay <= 0 {
		maxDelay = 64
	}
	delay := 1 + int64(splitmix64(h)%uint64(maxDelay))
	switch {
	case u < p.DropFrac:
		return actDrop, 0
	case u < p.DropFrac+p.DupFrac:
		return actDuplicate, delay
	case u < p.DropFrac+p.DupFrac+p.DelayFrac:
		return actDelay, delay
	}
	return actDeliver, 0
}

// SetFaultPlan attaches plan to the communicator. It must be called
// before any traffic and at most once; the plan's runtime state is
// bound to this Comm.
func (c *Comm) SetFaultPlan(plan *FaultPlan) {
	if c.plan != nil {
		panic("simmpi: fault plan already attached")
	}
	if plan == nil {
		return
	}
	plan.chans = make(map[chanKey]*channelState)
	plan.dead = make([]atomic.Bool, c.size)
	plan.sends = make([]atomic.Int64, c.size)
	c.plan = plan
}

// FaultStats snapshots the attached plan's fault counters (zero value
// when no plan is attached).
func (c *Comm) FaultStats() FaultStats {
	p := c.plan
	if p == nil {
		return FaultStats{}
	}
	return FaultStats{
		Delayed:    p.stats.delayed.Load(),
		Dropped:    p.stats.dropped.Load(),
		Duplicated: p.stats.duplicated.Load(),
		Deduped:    p.stats.deduped.Load(),
		DeadLetter: p.stats.deadLetter.Load(),
	}
}

// PendingDelayed returns the number of messages still held by the fault
// plane (in-flight at the time of the call).
func (c *Comm) PendingDelayed() int {
	p := c.plan
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	held := len(p.delayed.items)
	for _, ch := range p.chans {
		held += len(ch.held)
	}
	return held
}

// FlushDelayed releases every delayed message immediately, delivering
// it through the ordinary reassembly path (duplicates are still
// discarded). Used by shutdown accounting: after a completed solve the
// only held messages are trailing duplicate copies, so flushing must
// leave no unexpected messages behind.
func (c *Comm) FlushDelayed() {
	p := c.plan
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		d, ok := p.delayed.popReady(1 << 62)
		if !ok {
			return
		}
		c.deliverOrderedLocked(d.dst, d.env)
	}
}

// channel returns (creating if needed) the state for key. Caller holds
// p.mu.
func (p *FaultPlan) channel(key chanKey) *channelState {
	ch, ok := p.chans[key]
	if !ok {
		ch = &channelState{}
		p.chans[key] = ch
	}
	return ch
}

// faultySend runs one send through the fault plane. It is the
// plan-attached counterpart of the direct delivery in Isend.
func (c *Comm) faultySend(src, dst, tag int, env *envelope) {
	p := c.plan
	sendIdx := p.sends[src].Add(1) - 1

	// Kill check: crossing the kill threshold marks the rank dead
	// forever; dead ranks neither send nor receive.
	if k, ok := p.Kills[src]; ok && sendIdx >= k {
		p.dead[src].Store(true)
	}
	if p.dead[src].Load() || p.dead[dst].Load() {
		p.stats.deadLetter.Add(1)
		return
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	key := chanKey{src, dst, tag}
	ch := p.channel(key)
	env.seq = ch.nextSend
	ch.nextSend++

	tick := p.tick.Add(1)
	action, delay := p.decide(src, dst, tag, env.seq)

	// A stalled rank holds its sends for the stall window regardless of
	// the per-message verdict (drops still drop).
	if st, ok := p.Stalls[src]; ok && sendIdx >= st.After && action != actDrop {
		if action == actDeliver {
			action = actDelay
		}
		if delay < st.Ticks {
			delay = st.Ticks
		}
	}

	switch action {
	case actDrop:
		p.stats.dropped.Add(1)
	case actDuplicate:
		p.stats.duplicated.Add(1)
		c.deliverOrderedLocked(dst, env)
		dup := &envelope{source: env.source, tag: env.tag, data: env.data, seq: env.seq}
		p.delayed.push(delayedEnv{release: tick + delay, dst: dst, env: dup})
	case actDelay:
		p.stats.delayed.Add(1)
		p.delayed.push(delayedEnv{release: tick + delay, dst: dst, env: env})
	default:
		c.deliverOrderedLocked(dst, env)
	}
}

// deliverOrderedLocked pushes env through the channel-order
// reassembly: in-sequence envelopes are delivered (plus any successors
// they unblock), early ones are held, and repeats are discarded. Caller
// holds p.mu; mailbox locks nest inside it.
func (c *Comm) deliverOrderedLocked(dst int, env *envelope) {
	p := c.plan
	key := chanKey{env.source, dst, env.tag}
	ch := p.channel(key)
	switch {
	case env.seq < ch.nextRecv:
		p.stats.deduped.Add(1)
		return
	case env.seq > ch.nextRecv:
		for _, h := range ch.held {
			if h.seq == env.seq {
				p.stats.deduped.Add(1)
				return
			}
		}
		ch.held = append(ch.held, env)
		return
	}
	c.deliver(dst, env)
	ch.nextRecv++
	// Flush any held successors that are now in sequence.
	for {
		found := false
		for i, h := range ch.held {
			if h.seq == ch.nextRecv {
				ch.held = append(ch.held[:i], ch.held[i+1:]...)
				c.deliver(dst, h)
				ch.nextRecv++
				found = true
				break
			}
		}
		if !found {
			return
		}
	}
}

// pump advances the logical clock by one tick and delivers any delayed
// messages that have come due. Called from Request.Test, so any polling
// loop doubles as the transport's progress engine.
func (c *Comm) pump() {
	p := c.plan
	tick := p.tick.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		d, ok := p.delayed.popReady(tick)
		if !ok {
			return
		}
		if p.dead[d.dst].Load() || p.dead[d.env.source].Load() {
			p.stats.deadLetter.Add(1)
			continue
		}
		c.deliverOrderedLocked(d.dst, d.env)
	}
}

// Cancel removes a posted, still-unmatched receive from its mailbox and
// completes it with a negative Count so Wait never hangs on it. It
// returns true if the receive was cancelled, false if it had already
// matched (or is not a receive). This is the MPI_Cancel analogue the
// scheduler's abort path uses so a failed timestep leaks no requests.
func (c *Comm) Cancel(r *Request) bool {
	if r == nil || r.kind != kindRecv || r.Test() {
		return false
	}
	box := &c.boxes[r.rank]
	box.mu.Lock()
	for i, pr := range box.posted {
		if pr == r {
			box.posted = append(box.posted[:i], box.posted[i+1:]...)
			box.mu.Unlock()
			r.complete(nil, Status{Source: -1, Tag: -1, Count: -1})
			return true
		}
	}
	box.mu.Unlock()
	return false
}

// Cancelled reports whether the request was completed by Cancel rather
// than by a matching message.
func (r *Request) Cancelled() bool {
	return r.Test() && r.Status().Count < 0
}

// String renders the plan for logs.
func (p *FaultPlan) String() string {
	return fmt.Sprintf("FaultPlan{seed=%d delay=%g dup=%g drop=%g kills=%d stalls=%d}",
		p.Seed, p.DelayFrac, p.DupFrac, p.DropFrac, len(p.Kills), len(p.Stalls))
}

package uda

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/mathutil"
)

func testVar(box grid.Box) *field.CC[float64] {
	v := field.NewCC[float64](box)
	v.FillFunc(func(c grid.IntVector) float64 {
		return float64(c.X)*1.5 - float64(c.Y)/3 + float64(c.Z)*7
	})
	return v
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, err := Create(dir, "benchmark run")
	if err != nil {
		t.Fatal(err)
	}
	box := grid.NewBox(grid.IV(4, 0, 8), grid.IV(8, 4, 12))
	want := testVar(box)
	if err := a.SaveCC(3, "divQ", 7, want); err != nil {
		t.Fatal(err)
	}

	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.LoadCC(3, "divQ", 7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Box() != box {
		t.Fatalf("box = %v", got.Box())
	}
	box.ForEach(func(c grid.IntVector) {
		if got.At(c) != want.At(c) {
			t.Fatalf("value mismatch at %v", c)
		}
	})
	idx := b.Index()
	if idx.Title != "benchmark run" {
		t.Errorf("title = %q", idx.Title)
	}
	if len(idx.Timesteps) != 1 || idx.Timesteps[0] != 3 {
		t.Errorf("timesteps = %v", idx.Timesteps)
	}
	if len(idx.Variables) != 1 || idx.Variables[0] != "divQ" {
		t.Errorf("variables = %v", idx.Variables)
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, "b"); err == nil {
		t.Error("second Create should refuse to clobber the archive")
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("Open of a non-archive should fail")
	}
}

func TestLoadMissingVariable(t *testing.T) {
	dir := t.TempDir()
	a, _ := Create(dir, "x")
	if _, err := a.LoadCC(0, "ghost", 0); err == nil {
		t.Error("missing payload should fail")
	}
}

func TestCorruptPayloadRejected(t *testing.T) {
	dir := t.TempDir()
	a, _ := Create(dir, "x")
	box := grid.NewBox(grid.IV(0, 0, 0), grid.IV(2, 2, 2))
	if err := a.SaveCC(0, "v", 0, testVar(box)); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "t0000", "v.p0.bin")
	// Truncate the payload.
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.LoadCC(0, "v", 0); err == nil {
		t.Error("truncated payload should fail")
	}
	// Corrupt the magic.
	data[0] = 'X'
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.LoadCC(0, "v", 0); err == nil {
		t.Error("bad magic should fail")
	}
}

func TestMultipleTimestepsSorted(t *testing.T) {
	dir := t.TempDir()
	a, _ := Create(dir, "x")
	box := grid.NewBox(grid.IV(0, 0, 0), grid.IV(2, 2, 2))
	for _, ts := range []int{5, 1, 3, 1} {
		if err := a.SaveCC(ts, "T", 0, testVar(box)); err != nil {
			t.Fatal(err)
		}
	}
	got := a.Timesteps()
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("timesteps = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("timesteps = %v, want %v", got, want)
		}
	}
}

func TestSaveLoadLevel(t *testing.T) {
	dir := t.TempDir()
	a, _ := Create(dir, "level io")
	g, err := grid.New(mathutil.V3(0, 0, 0), mathutil.V3(1, 1, 1),
		grid.Spec{Resolution: grid.Uniform(8), PatchSize: grid.Uniform(4)})
	if err != nil {
		t.Fatal(err)
	}
	lvl := g.Levels[0]
	err = a.SaveLevel(2, "T", lvl, func(p *grid.Patch) (*field.CC[float64], error) {
		return testVar(p.Cells), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	full, err := a.LoadLevel(2, "T", lvl)
	if err != nil {
		t.Fatal(err)
	}
	ref := testVar(lvl.IndexBox())
	lvl.IndexBox().ForEach(func(c grid.IntVector) {
		if full.At(c) != ref.At(c) {
			t.Fatalf("level reassembly wrong at %v", c)
		}
	})
}

// TestPayloadRoundTripProperty: arbitrary windows and values survive
// the archive bit-exactly (quick-check).
func TestPayloadRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	a, err := Create(dir, "prop")
	if err != nil {
		t.Fatal(err)
	}
	f := func(lx, ly, lz uint8, ex, ey, ez uint8, vals []float64) bool {
		lo := grid.IV(int(lx%32)-16, int(ly%32)-16, int(lz%32)-16)
		ext := grid.IV(int(ex%4)+1, int(ey%4)+1, int(ez%4)+1)
		box := grid.NewBox(lo, lo.Add(ext))
		v := field.NewCC[float64](box)
		i := 0
		box.ForEach(func(c grid.IntVector) {
			if i < len(vals) {
				v.Set(c, vals[i])
				i++
			}
		})
		if err := a.SaveCC(0, "p", 0, v); err != nil {
			return false
		}
		got, err := a.LoadCC(0, "p", 0)
		if err != nil {
			return false
		}
		ok := got.Box() == box
		box.ForEach(func(c grid.IntVector) {
			gv, wv := got.At(c), v.At(c)
			// NaN-safe bit comparison.
			if math.Float64bits(gv) != math.Float64bits(wv) {
				ok = false
			}
		})
		// Clean up for the next property iteration (same ts/label/patch).
		os.Remove(filepath.Join(dir, "t0000", "p.p0.bin"))
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Crash consistency for the archive. Uintah's UDA is the restart
// mechanism for week-long runs, so a crash — of the writer mid-payload
// or of the machine mid-rename — must never brick the archive or, worse,
// let a half-written checkpoint be silently loaded. This file provides
// the three layers that guarantee it:
//
//  1. every payload carries a CRC32 trailer over its full framing, so a
//     torn or bit-flipped file is detected on read with a typed error;
//  2. every file (payloads and index.json) is written via temp file +
//     fsync + rename + directory fsync, so a crash leaves either the old
//     bytes or the new bytes, never a mixture;
//  3. Verify/Repair scan an archive after a crash and quarantine torn
//     timesteps (renamed aside, dropped from the index) so a restart
//     resumes from the newest checkpoint that is provably whole.
package uda

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
)

// Typed corruption errors. ErrTruncated and ErrChecksum wrap ErrCorrupt,
// so errors.Is(err, ErrCorrupt) matches any unloadable payload while the
// narrower sentinels distinguish a torn write from a bit flip.
var (
	// ErrCorrupt is the umbrella error for any payload that cannot be
	// decoded: bad magic, impossible geometry, framing damage.
	ErrCorrupt = errors.New("uda: corrupt payload")
	// ErrTruncated marks a payload shorter than its header promises —
	// the signature of a torn write.
	ErrTruncated = fmt.Errorf("%w: truncated", ErrCorrupt)
	// ErrChecksum marks a CRC32 mismatch: the length is right but the
	// bytes are not.
	ErrChecksum = fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	// ErrNonFinite rejects NaN/±Inf cells on read when Archive.Strict is
	// set. It is distinct from ErrCorrupt: the framing is intact, the
	// physics is not.
	ErrNonFinite = errors.New("uda: non-finite cell value")
)

// Decode sanity bounds: coordinates and extents far beyond any grid this
// repo can build are rejected as corruption before any arithmetic that
// could overflow or any allocation that could OOM.
const (
	maxCoord  = int64(1) << 40
	maxExtent = int64(1) << 20
	maxCells  = int64(1) << 33
)

// encodePayload renders a variable in the UDA1 framing: magic, window
// box (6 int64s), cell count (int64), the cells as float64 bits, and a
// trailing CRC32 (IEEE) over everything before it.
func encodePayload(v *field.CC[float64]) []byte {
	box := v.Box()
	data := v.Data()
	buf := make([]byte, payloadHeaderLen+8*len(data)+4)
	copy(buf, magic)
	off := 4
	for _, x := range []int{box.Lo.X, box.Lo.Y, box.Lo.Z, box.Hi.X, box.Hi.Y, box.Hi.Z} {
		putU64(buf[off:], uint64(int64(x)))
		off += 8
	}
	putU64(buf[off:], uint64(len(data)))
	off += 8
	for _, x := range data {
		putU64(buf[off:], math.Float64bits(x))
		off += 8
	}
	putU32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	return buf
}

// decodePayload parses a payload, verifying framing, geometry, and the
// CRC32 trailer. Payloads written before the trailer existed (exactly
// header+data long) are accepted without a checksum. It never panics on
// arbitrary input: every failure is a typed corruption error. With
// strict set, NaN and ±Inf cells are rejected with ErrNonFinite.
func decodePayload(buf []byte, strict bool) (*field.CC[float64], error) {
	if len(buf) < payloadHeaderLen {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(buf), payloadHeaderLen)
	}
	if string(buf[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, buf[:4])
	}
	off := 4
	var xs [6]int64
	for i := range xs {
		xs[i] = int64(getU64(buf[off:]))
		if xs[i] > maxCoord || xs[i] < -maxCoord {
			return nil, fmt.Errorf("%w: window coordinate %d out of range", ErrCorrupt, xs[i])
		}
		off += 8
	}
	n := int64(getU64(buf[off:]))
	off += 8
	if n < 0 || n > maxCells {
		return nil, fmt.Errorf("%w: cell count %d out of range", ErrCorrupt, n)
	}
	box := grid.NewBox(grid.IV(int(xs[0]), int(xs[1]), int(xs[2])), grid.IV(int(xs[3]), int(xs[4]), int(xs[5])))
	ext := box.Extent()
	for _, e := range []int{ext.X, ext.Y, ext.Z} {
		if int64(e) > maxExtent {
			return nil, fmt.Errorf("%w: window extent %d out of range", ErrCorrupt, e)
		}
	}
	if int64(box.Volume()) != n {
		return nil, fmt.Errorf("%w: cell count %d != window volume %d", ErrCorrupt, n, box.Volume())
	}
	want := int64(payloadHeaderLen) + 8*n
	switch int64(len(buf)) {
	case want:
		// Pre-CRC payload: framing length is the only integrity check.
	case want + 4:
		if got, sum := getU32(buf[want:]), crc32.ChecksumIEEE(buf[:want]); got != sum {
			return nil, fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, got, sum)
		}
	default:
		if int64(len(buf)) < want {
			return nil, fmt.Errorf("%w: %d bytes, want %d", ErrTruncated, len(buf), want+4)
		}
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, int64(len(buf))-want-4)
	}
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Float64frombits(getU64(buf[off:]))
		off += 8
	}
	if strict {
		for i, x := range data {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("%w: cell %d is %v", ErrNonFinite, i, x)
			}
		}
	}
	return field.NewCCFrom(box, data), nil
}

// writeFileSync writes data to path crash-consistently: a temp file in
// the same directory, fsync, atomic rename over path, then an fsync of
// the directory so the rename itself is durable. A crash at any point
// leaves either the previous file or the new one, never a mixture.
func writeFileSync(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Chmod(perm)
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir makes a directory's entries (creations and renames) durable.
// Filesystems that cannot fsync a directory are tolerated: the data
// files themselves are still synced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// PayloadError locates one problem Verify found: a payload (or a whole
// timestep) of the archive that cannot be loaded.
type PayloadError struct {
	// Timestep is the archive timestep the problem lives in.
	Timestep int
	// File is the payload path relative to the archive root ("" when the
	// timestep directory itself is the problem).
	File string
	// Err is the typed corruption error.
	Err error
}

// Error implements error.
func (e PayloadError) Error() string {
	if e.File == "" {
		return fmt.Sprintf("uda: timestep %d: %v", e.Timestep, e.Err)
	}
	return fmt.Sprintf("uda: timestep %d: %s: %v", e.Timestep, e.File, e.Err)
}

// Unwrap exposes the underlying typed error to errors.Is.
func (e PayloadError) Unwrap() error { return e.Err }

// Verify decodes every payload of every indexed timestep and reports the
// ones that fail — the post-crash audit. A clean archive returns nil.
func (a *Archive) Verify() []PayloadError {
	var bad []PayloadError
	for _, ts := range a.index.Timesteps {
		dir := a.tsDir(ts)
		ents, err := os.ReadDir(dir)
		if err != nil {
			bad = append(bad, PayloadError{Timestep: ts, Err: fmt.Errorf("%w: unreadable timestep directory: %v", ErrCorrupt, err)})
			continue
		}
		found := false
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".bin") {
				continue
			}
			found = true
			rel := filepath.Join(filepath.Base(dir), e.Name())
			buf, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				bad = append(bad, PayloadError{Timestep: ts, File: rel, Err: fmt.Errorf("%w: %v", ErrCorrupt, err)})
				continue
			}
			if _, err := decodePayload(buf, a.Strict); err != nil {
				bad = append(bad, PayloadError{Timestep: ts, File: rel, Err: err})
			}
		}
		if !found {
			bad = append(bad, PayloadError{Timestep: ts, Err: fmt.Errorf("%w: no payloads on disk", ErrCorrupt)})
		}
	}
	return bad
}

// tornSuffix marks a quarantined timestep directory.
const tornSuffix = ".torn"

// Repair quarantines every timestep Verify flags: the timestep directory
// is renamed aside with a ".torn" suffix and dropped from the index, so
// no load path can ever hand out a half-written checkpoint. It returns
// the quarantined timestep numbers in ascending order.
func (a *Archive) Repair() ([]int, error) {
	bad := a.Verify()
	if len(bad) == 0 {
		return nil, nil
	}
	torn := make(map[int]bool, len(bad))
	for _, e := range bad {
		torn[e.Timestep] = true
	}
	keep := a.index.Timesteps[:0]
	quarantined := make([]int, 0, len(torn))
	for _, ts := range a.index.Timesteps {
		if !torn[ts] {
			keep = append(keep, ts)
			continue
		}
		quarantined = append(quarantined, ts)
		dir := a.tsDir(ts)
		if _, err := os.Stat(dir); err == nil {
			if err := os.Rename(dir, dir+tornSuffix); err != nil {
				return quarantined, fmt.Errorf("uda: quarantining timestep %d: %w", ts, err)
			}
		}
	}
	a.index.Timesteps = keep
	if err := a.writeIndex(); err != nil {
		return quarantined, err
	}
	sort.Ints(quarantined)
	return quarantined, syncDir(a.dir)
}

// OpenRepair opens an existing archive and immediately quarantines any
// torn timesteps — the restart-after-crash entry point. It returns the
// opened archive and the timesteps it had to quarantine.
func OpenRepair(dir string) (*Archive, []int, error) {
	a, err := Open(dir)
	if err != nil {
		return nil, nil, err
	}
	q, err := a.Repair()
	if err != nil {
		return nil, q, err
	}
	return a, q, nil
}

// RemoveTimestep deletes a recorded timestep's payloads and drops it
// from the index — checkpoint-retention pruning.
func (a *Archive) RemoveTimestep(ts int) error {
	i := sort.SearchInts(a.index.Timesteps, ts)
	if i >= len(a.index.Timesteps) || a.index.Timesteps[i] != ts {
		return fmt.Errorf("uda: no timestep %d", ts)
	}
	a.index.Timesteps = append(a.index.Timesteps[:i], a.index.Timesteps[i+1:]...)
	if err := a.writeIndex(); err != nil {
		return err
	}
	if err := os.RemoveAll(a.tsDir(ts)); err != nil {
		return fmt.Errorf("uda: %w", err)
	}
	return syncDir(a.dir)
}

package uda

import (
	"errors"
	"math"
	"testing"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
)

// FuzzOpenPayload feeds arbitrary bytes — seeded with valid payloads,
// truncations, and targeted mutations — through the payload decoder and
// asserts the crash-consistency contract: the decoder never panics, and
// every rejection is the typed ErrCorrupt (or ErrNonFinite in strict
// mode). This is the read path a restart takes over a possibly-torn
// archive, so "garbage in, typed error out" is a safety property.
func FuzzOpenPayload(f *testing.F) {
	valid := func(lo, hi grid.IntVector, vals ...float64) []byte {
		box := grid.NewBox(lo, hi)
		v := field.NewCC[float64](box)
		for i := range vals {
			if i < len(v.Data()) {
				v.Data()[i] = vals[i]
			}
		}
		return encodePayload(v)
	}
	whole := valid(grid.IV(0, 0, 0), grid.IV(2, 2, 2), 1.5, -3, math.NaN(), math.Inf(1))
	f.Add(whole)
	f.Add(whole[:len(whole)-4])       // legacy framing (no CRC)
	f.Add(whole[:len(whole)-9])       // torn mid-data
	f.Add(whole[:payloadHeaderLen-1]) // torn mid-header
	f.Add([]byte{})
	f.Add([]byte("UDA1"))
	f.Add([]byte("XXXX garbage that is long enough to cover the header region ok"))
	huge := append([]byte(nil), whole...)
	for i := 4; i < payloadHeaderLen; i++ {
		huge[i] = 0xff // absurd window coordinates and cell count
	}
	f.Add(huge)
	empty := valid(grid.IV(1, 1, 1), grid.IV(2, 2, 2))
	empty[payloadHeaderLen-8] = 0 // lie about the count: 0 cells for a 1-cell box
	f.Add(empty)

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, strict := range []bool{false, true} {
			v, err := decodePayload(data, strict)
			switch {
			case err == nil:
				if v == nil {
					t.Fatalf("nil field with nil error (strict=%v)", strict)
				}
				if int64(len(v.Data())) != int64(v.Box().Volume()) {
					t.Fatalf("decoded %d cells for box %v (strict=%v)", len(v.Data()), v.Box(), strict)
				}
			case errors.Is(err, ErrCorrupt) || errors.Is(err, ErrNonFinite):
				// The contract: rejection is always typed.
			default:
				t.Fatalf("untyped decode error %v (strict=%v)", err, strict)
			}
		}
	})
}

// Package uda implements a miniature of the Uintah Data Archive — the
// on-disk timestep output format Uintah writes for post-processing and
// restarts. A real UDA is a directory tree of XML indices and per-patch
// binary data; this reproduction keeps the same shape (one archive
// directory, one index, per-timestep subdirectories, per-variable
// binary payloads with patch windows) with a simple, versioned, binary
// encoding instead of XML.
//
// Layout:
//
//	<dir>/index.json                     archive metadata + timestep list
//	<dir>/t<NNNN>/<label>.p<patch>.bin   per-patch variable payloads
//
// Payload format (little-endian): magic "UDA1", the window box (6
// int64s), the cell count (int64), then count float64s in the canonical
// z-fastest order.
package uda

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
)

const magic = "UDA1"

// Index is the archive's top-level metadata.
type Index struct {
	// Title names the simulation.
	Title string `json:"title"`
	// Timesteps lists the recorded timestep numbers in order.
	Timesteps []int `json:"timesteps"`
	// Variables lists the labels ever saved.
	Variables []string `json:"variables"`
}

// Archive is an open UDA directory.
type Archive struct {
	dir   string
	index Index
}

// Create makes a new archive directory (which must not already contain
// an index).
func Create(dir, title string) (*Archive, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("uda: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.json")); err == nil {
		return nil, fmt.Errorf("uda: %s already holds an archive", dir)
	}
	a := &Archive{dir: dir, index: Index{Title: title}}
	if err := a.writeIndex(); err != nil {
		return nil, err
	}
	return a, nil
}

// Open loads an existing archive.
func Open(dir string) (*Archive, error) {
	data, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		return nil, fmt.Errorf("uda: %w", err)
	}
	a := &Archive{dir: dir}
	if err := json.Unmarshal(data, &a.index); err != nil {
		return nil, fmt.Errorf("uda: corrupt index: %w", err)
	}
	return a, nil
}

// Index returns a copy of the archive metadata.
func (a *Archive) Index() Index {
	cp := a.index
	cp.Timesteps = append([]int(nil), a.index.Timesteps...)
	cp.Variables = append([]string(nil), a.index.Variables...)
	return cp
}

func (a *Archive) writeIndex() error {
	data, err := json.MarshalIndent(a.index, "", "  ")
	if err != nil {
		return fmt.Errorf("uda: %w", err)
	}
	tmp := filepath.Join(a.dir, "index.json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("uda: %w", err)
	}
	return os.Rename(tmp, filepath.Join(a.dir, "index.json"))
}

func (a *Archive) tsDir(ts int) string { return filepath.Join(a.dir, fmt.Sprintf("t%04d", ts)) }

func payloadName(label string, patch int) string {
	return fmt.Sprintf("%s.p%d.bin", label, patch)
}

// SaveCC writes a variable's patch window into timestep ts.
func (a *Archive) SaveCC(ts int, label string, patch int, v *field.CC[float64]) error {
	dir := a.tsDir(ts)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("uda: %w", err)
	}
	box := v.Box()
	data := v.Data()
	buf := make([]byte, 4+6*8+8+8*len(data))
	copy(buf, magic)
	off := 4
	for _, x := range []int{box.Lo.X, box.Lo.Y, box.Lo.Z, box.Hi.X, box.Hi.Y, box.Hi.Z} {
		binary.LittleEndian.PutUint64(buf[off:], uint64(int64(x)))
		off += 8
	}
	binary.LittleEndian.PutUint64(buf[off:], uint64(len(data)))
	off += 8
	for _, x := range data {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(x))
		off += 8
	}
	if err := os.WriteFile(filepath.Join(dir, payloadName(label, patch)), buf, 0o644); err != nil {
		return fmt.Errorf("uda: %w", err)
	}
	a.noteTimestep(ts)
	a.noteVariable(label)
	return a.writeIndex()
}

// LoadCC reads a variable's patch window from timestep ts.
func (a *Archive) LoadCC(ts int, label string, patch int) (*field.CC[float64], error) {
	buf, err := os.ReadFile(filepath.Join(a.tsDir(ts), payloadName(label, patch)))
	if err != nil {
		return nil, fmt.Errorf("uda: %w", err)
	}
	if len(buf) < 4+6*8+8 || string(buf[:4]) != magic {
		return nil, fmt.Errorf("uda: bad payload header for %s patch %d", label, patch)
	}
	off := 4
	xs := make([]int, 6)
	for i := range xs {
		xs[i] = int(int64(binary.LittleEndian.Uint64(buf[off:])))
		off += 8
	}
	box := grid.NewBox(grid.IV(xs[0], xs[1], xs[2]), grid.IV(xs[3], xs[4], xs[5]))
	n := int(binary.LittleEndian.Uint64(buf[off:]))
	off += 8
	if n != box.Volume() {
		return nil, fmt.Errorf("uda: payload count %d != box volume %d", n, box.Volume())
	}
	if len(buf) != off+8*n {
		return nil, fmt.Errorf("uda: truncated payload (%d bytes, want %d)", len(buf), off+8*n)
	}
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return field.NewCCFrom(box, data), nil
}

// SaveLevel writes every patch of a level's variable map in one call.
func (a *Archive) SaveLevel(ts int, label string, lvl *grid.Level, get func(p *grid.Patch) (*field.CC[float64], error)) error {
	for _, p := range lvl.Patches {
		v, err := get(p)
		if err != nil {
			return fmt.Errorf("uda: save level %s: %w", label, err)
		}
		if err := a.SaveCC(ts, label, p.ID, v); err != nil {
			return err
		}
	}
	return nil
}

// LoadLevel reassembles a whole level's variable from its patches.
func (a *Archive) LoadLevel(ts int, label string, lvl *grid.Level) (*field.CC[float64], error) {
	out := field.NewCC[float64](lvl.IndexBox())
	for _, p := range lvl.Patches {
		v, err := a.LoadCC(ts, label, p.ID)
		if err != nil {
			return nil, err
		}
		region := v.Box().Intersect(p.Cells)
		out.CopyRegion(v, region)
	}
	return out, nil
}

// Timesteps returns the recorded timestep numbers.
func (a *Archive) Timesteps() []int { return append([]int(nil), a.index.Timesteps...) }

func (a *Archive) noteTimestep(ts int) {
	i := sort.SearchInts(a.index.Timesteps, ts)
	if i < len(a.index.Timesteps) && a.index.Timesteps[i] == ts {
		return
	}
	a.index.Timesteps = append(a.index.Timesteps, 0)
	copy(a.index.Timesteps[i+1:], a.index.Timesteps[i:])
	a.index.Timesteps[i] = ts
}

func (a *Archive) noteVariable(label string) {
	i := sort.SearchStrings(a.index.Variables, label)
	if i < len(a.index.Variables) && a.index.Variables[i] == label {
		return
	}
	a.index.Variables = append(a.index.Variables, "")
	copy(a.index.Variables[i+1:], a.index.Variables[i:])
	a.index.Variables[i] = label
}

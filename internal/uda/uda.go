// Package uda implements a miniature of the Uintah Data Archive — the
// on-disk timestep output format Uintah writes for post-processing and
// restarts. A real UDA is a directory tree of XML indices and per-patch
// binary data; this reproduction keeps the same shape (one archive
// directory, one index, per-timestep subdirectories, per-variable
// binary payloads with patch windows) with a simple, versioned, binary
// encoding instead of XML.
//
// Layout:
//
//	<dir>/index.json                     archive metadata + timestep list
//	<dir>/t<NNNN>/<label>.p<patch>.bin   per-patch variable payloads
//
// Payload format (little-endian): magic "UDA1", the window box (6
// int64s), the cell count (int64), count float64s in the canonical
// z-fastest order, then a CRC32 (IEEE) trailer over everything before
// it. Payloads and the index are written crash-consistently (temp file
// + fsync + rename + directory fsync; see durable.go), and torn or
// corrupt payloads surface as typed errors (ErrCorrupt, ErrTruncated,
// ErrChecksum) instead of bad data.
package uda

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
)

const magic = "UDA1"

// payloadHeaderLen is magic + window box + cell count.
const payloadHeaderLen = 4 + 6*8 + 8

// Little-endian accessors shared by the payload codec.
func putU64(b []byte, x uint64) { binary.LittleEndian.PutUint64(b, x) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }
func putU32(b []byte, x uint32) { binary.LittleEndian.PutUint32(b, x) }
func getU32(b []byte) uint32    { return binary.LittleEndian.Uint32(b) }

// Index is the archive's top-level metadata.
type Index struct {
	// Title names the simulation.
	Title string `json:"title"`
	// Timesteps lists the recorded timestep numbers in order.
	Timesteps []int `json:"timesteps"`
	// Variables lists the labels ever saved.
	Variables []string `json:"variables"`
}

// Archive is an open UDA directory.
type Archive struct {
	dir   string
	index Index

	// Strict, when set, makes every read reject NaN and ±Inf cells with
	// ErrNonFinite. Checkpoint consumers set it: a non-finite value in a
	// restart field poisons everything downstream of the resume.
	Strict bool
}

// Create makes a new archive directory (which must not already contain
// an index).
func Create(dir, title string) (*Archive, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("uda: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.json")); err == nil {
		return nil, fmt.Errorf("uda: %s already holds an archive", dir)
	}
	a := &Archive{dir: dir, index: Index{Title: title}}
	if err := a.writeIndex(); err != nil {
		return nil, err
	}
	return a, nil
}

// Open loads an existing archive.
func Open(dir string) (*Archive, error) {
	data, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		return nil, fmt.Errorf("uda: %w", err)
	}
	a := &Archive{dir: dir}
	if err := json.Unmarshal(data, &a.index); err != nil {
		return nil, fmt.Errorf("uda: corrupt index: %w", err)
	}
	return a, nil
}

// Index returns a copy of the archive metadata.
func (a *Archive) Index() Index {
	cp := a.index
	cp.Timesteps = append([]int(nil), a.index.Timesteps...)
	cp.Variables = append([]string(nil), a.index.Variables...)
	return cp
}

func (a *Archive) writeIndex() error {
	data, err := json.MarshalIndent(a.index, "", "  ")
	if err != nil {
		return fmt.Errorf("uda: %w", err)
	}
	if err := writeFileSync(filepath.Join(a.dir, "index.json"), data, 0o644); err != nil {
		return fmt.Errorf("uda: %w", err)
	}
	return nil
}

func (a *Archive) tsDir(ts int) string { return filepath.Join(a.dir, fmt.Sprintf("t%04d", ts)) }

func payloadName(label string, patch int) string {
	return fmt.Sprintf("%s.p%d.bin", label, patch)
}

// SaveCC writes a variable's patch window into timestep ts. The payload
// is CRC-framed and written atomically (temp + fsync + rename), and the
// index is updated the same way afterwards — so a crash at any point
// leaves the archive loadable: either without the new payload, or with
// it whole.
func (a *Archive) SaveCC(ts int, label string, patch int, v *field.CC[float64]) error {
	dir := a.tsDir(ts)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("uda: %w", err)
	}
	if err := writeFileSync(filepath.Join(dir, payloadName(label, patch)), encodePayload(v), 0o644); err != nil {
		return fmt.Errorf("uda: %w", err)
	}
	a.noteTimestep(ts)
	a.noteVariable(label)
	return a.writeIndex()
}

// LoadCC reads a variable's patch window from timestep ts, verifying the
// framing and CRC32 trailer. Torn or damaged payloads fail with a typed
// error (ErrTruncated / ErrChecksum / ErrCorrupt); with Archive.Strict
// set, non-finite cells fail with ErrNonFinite.
func (a *Archive) LoadCC(ts int, label string, patch int) (*field.CC[float64], error) {
	buf, err := os.ReadFile(filepath.Join(a.tsDir(ts), payloadName(label, patch)))
	if err != nil {
		return nil, fmt.Errorf("uda: %w", err)
	}
	v, err := decodePayload(buf, a.Strict)
	if err != nil {
		return nil, fmt.Errorf("%s patch %d at t%04d: %w", label, patch, ts, err)
	}
	return v, nil
}

// SaveLevel writes every patch of a level's variable map in one call.
func (a *Archive) SaveLevel(ts int, label string, lvl *grid.Level, get func(p *grid.Patch) (*field.CC[float64], error)) error {
	for _, p := range lvl.Patches {
		v, err := get(p)
		if err != nil {
			return fmt.Errorf("uda: save level %s: %w", label, err)
		}
		if err := a.SaveCC(ts, label, p.ID, v); err != nil {
			return err
		}
	}
	return nil
}

// LoadLevel reassembles a whole level's variable from its patches.
func (a *Archive) LoadLevel(ts int, label string, lvl *grid.Level) (*field.CC[float64], error) {
	out := field.NewCC[float64](lvl.IndexBox())
	for _, p := range lvl.Patches {
		v, err := a.LoadCC(ts, label, p.ID)
		if err != nil {
			return nil, err
		}
		region := v.Box().Intersect(p.Cells)
		out.CopyRegion(v, region)
	}
	return out, nil
}

// Timesteps returns the recorded timestep numbers.
func (a *Archive) Timesteps() []int { return append([]int(nil), a.index.Timesteps...) }

func (a *Archive) noteTimestep(ts int) {
	i := sort.SearchInts(a.index.Timesteps, ts)
	if i < len(a.index.Timesteps) && a.index.Timesteps[i] == ts {
		return
	}
	a.index.Timesteps = append(a.index.Timesteps, 0)
	copy(a.index.Timesteps[i+1:], a.index.Timesteps[i:])
	a.index.Timesteps[i] = ts
}

func (a *Archive) noteVariable(label string) {
	i := sort.SearchStrings(a.index.Variables, label)
	if i < len(a.index.Variables) && a.index.Variables[i] == label {
		return
	}
	a.index.Variables = append(a.index.Variables, "")
	copy(a.index.Variables[i+1:], a.index.Variables[i:])
	a.index.Variables[i] = label
}

package uda

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
)

// mustSave writes a payload or fails the test.
func mustSave(t *testing.T, a *Archive, ts int, label string, patch int, v *field.CC[float64]) {
	t.Helper()
	if err := a.SaveCC(ts, label, patch, v); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripSpecialValues: NaN, ±Inf and an empty window survive the
// archive bit-exactly under the default (non-strict) reader.
func TestRoundTripSpecialValues(t *testing.T) {
	a, err := Create(t.TempDir(), "specials")
	if err != nil {
		t.Fatal(err)
	}

	box := grid.NewBox(grid.IV(0, 0, 0), grid.IV(2, 1, 2))
	vals := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.0}
	v := field.NewCCFrom(box, append([]float64(nil), vals...))
	mustSave(t, a, 0, "specials", 0, v)
	got, err := a.LoadCC(0, "specials", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range vals {
		if math.Float64bits(got.Data()[i]) != math.Float64bits(want) {
			t.Errorf("cell %d: got bits %x, want bits %x", i, math.Float64bits(got.Data()[i]), math.Float64bits(want))
		}
	}

	// Empty window: zero cells, still a valid payload.
	empty := field.NewCCFrom[float64](grid.NewBox(grid.IV(3, 3, 3), grid.IV(3, 5, 5)), nil)
	mustSave(t, a, 1, "empty", 0, empty)
	got, err = a.LoadCC(1, "empty", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Box() != empty.Box() || len(got.Data()) != 0 {
		t.Errorf("empty window came back as %v with %d cells", got.Box(), len(got.Data()))
	}
}

// TestStrictRejectsNonFinite: the same payload loads normally but fails
// with ErrNonFinite once Strict is set.
func TestStrictRejectsNonFinite(t *testing.T) {
	dir := t.TempDir()
	a, err := Create(dir, "strict")
	if err != nil {
		t.Fatal(err)
	}
	box := grid.NewBox(grid.IV(0, 0, 0), grid.IV(2, 2, 2))
	for name, bad := range map[string]float64{"nan": math.NaN(), "posinf": math.Inf(1), "neginf": math.Inf(-1)} {
		v := field.NewCC[float64](box)
		v.Fill(1)
		v.Set(grid.IV(1, 1, 1), bad)
		mustSave(t, a, 0, name, 0, v)
		if _, err := a.LoadCC(0, name, 0); err != nil {
			t.Errorf("%s: non-strict load failed: %v", name, err)
		}
		a.Strict = true
		if _, err := a.LoadCC(0, name, 0); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: strict load error = %v, want ErrNonFinite", name, err)
		}
		a.Strict = false
	}
	// Strict must not reject ordinary finite payloads.
	v := field.NewCC[float64](box)
	v.Fill(4.25)
	mustSave(t, a, 1, "fine", 0, v)
	a.Strict = true
	if _, err := a.LoadCC(1, "fine", 0); err != nil {
		t.Errorf("strict load of finite payload failed: %v", err)
	}
}

// TestTruncationTyped: a torn payload fails with ErrTruncated, which is
// also an ErrCorrupt.
func TestTruncationTyped(t *testing.T) {
	dir := t.TempDir()
	a, _ := Create(dir, "torn")
	box := grid.NewBox(grid.IV(0, 0, 0), grid.IV(3, 3, 3))
	mustSave(t, a, 2, "v", 1, testVar(box))
	p := filepath.Join(dir, "t0002", "v.p1.bin")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 9, len(data) - payloadHeaderLen, len(data) - 3} {
		if err := os.WriteFile(p, data[:len(data)-n], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := a.LoadCC(2, "v", 1)
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("cut %d bytes: error %v is not ErrCorrupt", n, err)
		}
	}
	// A clean header-only truncation is specifically ErrTruncated.
	if err := os.WriteFile(p, data[:payloadHeaderLen+8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.LoadCC(2, "v", 1); !errors.Is(err, ErrTruncated) {
		t.Errorf("mid-data truncation error = %v, want ErrTruncated", err)
	}
}

// TestChecksumDetectsBitFlip: flipping one data byte fails the CRC with
// the typed ErrChecksum.
func TestChecksumDetectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	a, _ := Create(dir, "flip")
	box := grid.NewBox(grid.IV(0, 0, 0), grid.IV(2, 2, 2))
	mustSave(t, a, 0, "v", 0, testVar(box))
	p := filepath.Join(dir, "t0000", "v.p0.bin")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[payloadHeaderLen+5] ^= 0x40
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = a.LoadCC(0, "v", 0)
	if !errors.Is(err, ErrChecksum) {
		t.Errorf("error = %v, want ErrChecksum", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("ErrChecksum does not wrap ErrCorrupt: %v", err)
	}
}

// TestLegacyPayloadWithoutCRCLoads: payloads written before the CRC
// trailer (exactly header+data long) still load.
func TestLegacyPayloadWithoutCRCLoads(t *testing.T) {
	dir := t.TempDir()
	a, _ := Create(dir, "legacy")
	box := grid.NewBox(grid.IV(0, 0, 0), grid.IV(2, 2, 2))
	want := testVar(box)
	mustSave(t, a, 0, "v", 0, want)
	p := filepath.Join(dir, "t0000", "v.p0.bin")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the 4-byte CRC trailer to reconstruct the legacy framing.
	if err := os.WriteFile(p, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := a.LoadCC(0, "v", 0)
	if err != nil {
		t.Fatalf("legacy payload rejected: %v", err)
	}
	box.ForEach(func(c grid.IntVector) {
		if got.At(c) != want.At(c) {
			t.Fatalf("legacy payload value mismatch at %v", c)
		}
	})
}

// TestVerifyRepairQuarantines: corrupting one of three timesteps makes
// Verify report it and Repair quarantine exactly that one, after which
// the archive is clean and the survivors still load.
func TestVerifyRepairQuarantines(t *testing.T) {
	dir := t.TempDir()
	a, _ := Create(dir, "repair")
	box := grid.NewBox(grid.IV(0, 0, 0), grid.IV(2, 2, 2))
	for _, ts := range []int{1, 2, 3} {
		mustSave(t, a, ts, "T", 0, testVar(box))
	}
	p := filepath.Join(dir, "t0002", "T.p0.bin")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	bad := a.Verify()
	if len(bad) != 1 || bad[0].Timestep != 2 {
		t.Fatalf("Verify = %v, want one finding at timestep 2", bad)
	}
	if !errors.Is(bad[0], ErrCorrupt) {
		t.Errorf("finding %v is not ErrCorrupt", bad[0])
	}

	b, q, err := OpenRepair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 1 || q[0] != 2 {
		t.Fatalf("quarantined %v, want [2]", q)
	}
	if got := b.Timesteps(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("timesteps after repair = %v, want [1 3]", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "t0002"+tornSuffix)); err != nil {
		t.Errorf("torn timestep not quarantined aside: %v", err)
	}
	if bad := b.Verify(); len(bad) != 0 {
		t.Errorf("archive still dirty after repair: %v", bad)
	}
	for _, ts := range []int{1, 3} {
		if _, err := b.LoadCC(ts, "T", 0); err != nil {
			t.Errorf("surviving timestep %d unloadable: %v", ts, err)
		}
	}
}

// TestVerifyFlagsMissingTimestepDir: an indexed timestep with no payload
// directory on disk is a finding, not a panic.
func TestVerifyFlagsMissingTimestepDir(t *testing.T) {
	dir := t.TempDir()
	a, _ := Create(dir, "missing")
	box := grid.NewBox(grid.IV(0, 0, 0), grid.IV(2, 2, 2))
	mustSave(t, a, 4, "T", 0, testVar(box))
	if err := os.RemoveAll(filepath.Join(dir, "t0004")); err != nil {
		t.Fatal(err)
	}
	bad := a.Verify()
	if len(bad) != 1 || bad[0].Timestep != 4 {
		t.Fatalf("Verify = %v, want one finding at timestep 4", bad)
	}
	if q, err := a.Repair(); err != nil || len(q) != 1 {
		t.Fatalf("Repair = %v, %v", q, err)
	}
	if len(a.Timesteps()) != 0 {
		t.Errorf("timesteps after repair = %v", a.Timesteps())
	}
}

// TestRemoveTimestep: pruning drops the index entry and the payloads.
func TestRemoveTimestep(t *testing.T) {
	dir := t.TempDir()
	a, _ := Create(dir, "prune")
	box := grid.NewBox(grid.IV(0, 0, 0), grid.IV(2, 2, 2))
	for _, ts := range []int{1, 2} {
		mustSave(t, a, ts, "T", 0, testVar(box))
	}
	if err := a.RemoveTimestep(1); err != nil {
		t.Fatal(err)
	}
	if got := a.Timesteps(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("timesteps = %v, want [2]", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "t0001")); !os.IsNotExist(err) {
		t.Error("pruned timestep directory still on disk")
	}
	if err := a.RemoveTimestep(9); err == nil {
		t.Error("removing an unknown timestep should fail")
	}
	// The change is durable: a fresh Open sees it.
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Timesteps(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("reopened timesteps = %v, want [2]", got)
	}
}

// TestNoLingeringTempFiles: the atomic-write discipline never leaves
// temp files behind on the happy path.
func TestNoLingeringTempFiles(t *testing.T) {
	dir := t.TempDir()
	a, _ := Create(dir, "tmp")
	box := grid.NewBox(grid.IV(0, 0, 0), grid.IV(2, 2, 2))
	for ts := 0; ts < 3; ts++ {
		mustSave(t, a, ts, "T", 0, testVar(box))
	}
	if err := a.RemoveTimestep(1); err != nil {
		t.Fatal(err)
	}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if strings.Contains(d.Name(), ".tmp-") {
			t.Errorf("lingering temp file %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

package calib

import (
	"encoding/json"
	"testing"

	"github.com/uintah-repro/rmcrt/internal/workload"
	"github.com/uintah-repro/rmcrt/internal/workload/scenarios"
)

func smokeWorkload(t *testing.T) workload.Spec {
	t.Helper()
	sc, ok := scenarios.Get("smoke")
	if !ok {
		t.Fatal("smoke scenario missing")
	}
	return sc.Spec
}

// The plan is a pure function of (workload, seed, sweep, calibration):
// two runs must agree byte-for-byte, which is the property the
// cmd/capacity golden test builds on.
func TestPlanDeterministic(t *testing.T) {
	opts := PlanOptions{
		Workload:  smokeWorkload(t),
		Seed:      7,
		MinShards: 1, MaxShards: 6,
		SLO: map[string]float64{"interactive": 0.5, "batch": 5},
	}
	a, err := Plan(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(opts)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("two identical Plan calls disagree")
	}
}

// Adding workers can only start jobs earlier under the greedy
// earliest-available dispatch, so per-class p95 must be non-increasing
// in fleet size and the recommended fleet must be the smallest
// feasible point.
func TestPlanMoreShardsNeverHurt(t *testing.T) {
	res, err := Plan(PlanOptions{
		Workload:  smokeWorkload(t),
		Seed:      7,
		MinShards: 1, MaxShards: 8,
		SLO: map[string]float64{"interactive": 60, "batch": 600},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs == 0 || res.PredictedWorkSeconds <= 0 {
		t.Fatalf("empty plan: %+v", res)
	}
	for i := 1; i < len(res.Points); i++ {
		prev, cur := res.Points[i-1], res.Points[i]
		for class, st := range cur.ByClass {
			if p, ok := prev.ByClass[class]; ok && st.P95 > p.P95+1e-9 {
				t.Errorf("class %s p95 grew from %.4f to %.4f when shards went %d -> %d",
					class, p.P95, st.P95, prev.Shards, cur.Shards)
			}
		}
		if cur.MakespanSeconds > prev.MakespanSeconds+1e-9 {
			t.Errorf("makespan grew with more shards: %.4f -> %.4f", prev.MakespanSeconds, cur.MakespanSeconds)
		}
	}
	if res.RecommendedShards != 0 {
		var rec *FleetPoint
		for i := range res.Points {
			if res.Points[i].Shards == res.RecommendedShards {
				rec = &res.Points[i]
			}
			if res.Points[i].Shards < res.RecommendedShards && res.Points[i].Feasible {
				t.Errorf("shards=%d already feasible but recommendation is %d",
					res.Points[i].Shards, res.RecommendedShards)
			}
		}
		if rec == nil || !rec.Feasible {
			t.Errorf("recommended fleet %d is not a feasible swept point", res.RecommendedShards)
		}
	}
}

// An SLO no fleet in the sweep can meet must yield no recommendation
// rather than a misleading one; unknown classes are rejected.
func TestPlanInfeasibleAndValidation(t *testing.T) {
	res, err := Plan(PlanOptions{
		Workload:  smokeWorkload(t),
		Seed:      7,
		MinShards: 1, MaxShards: 2,
		SLO: map[string]float64{"batch": 1e-9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RecommendedShards != 0 {
		t.Errorf("impossible SLO recommended %d shards, want 0", res.RecommendedShards)
	}
	if _, err := Plan(PlanOptions{Workload: smokeWorkload(t), SLO: map[string]float64{"platinum": 1}}); err == nil {
		t.Error("unknown SLO class accepted")
	}
}

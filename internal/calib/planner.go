package calib

import (
	"fmt"
	"math"
	"sort"

	"github.com/uintah-repro/rmcrt/internal/service"
	"github.com/uintah-repro/rmcrt/internal/workload"
)

// PlanOptions asks the capacity question: what fleet serves this
// workload at this SLO? The planner sweeps shard counts through a
// deterministic queueing simulation whose per-job service times come
// from the calibrated cost model — the paper's scaling study rerun
// against production traffic instead of a fixed benchmark.
type PlanOptions struct {
	// Workload is the traffic description (an internal/workload spec,
	// e.g. a named scenario).
	Workload workload.Spec
	// Seed drives workload generation; (Workload, Seed) names one exact
	// submission timeline, which makes the plan reproducible.
	Seed uint64
	// MinShards..MaxShards is the swept fleet range (defaults 1..16).
	MinShards, MaxShards int
	// WorkersPerShard is each shard's solver concurrency (default 1).
	WorkersPerShard int
	// SLO maps SLO class → p95 latency target in seconds. Classes
	// absent from the map are unconstrained. Empty means every point is
	// feasible and the plan is purely informational.
	SLO map[string]float64
	// Cal prices each job. The zero value is replaced by Default().
	Cal Calibration
}

// ClassStats summarizes one class's simulated latency at one fleet size.
type ClassStats struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean_sec"`
	P50   float64 `json:"p50_sec"`
	P95   float64 `json:"p95_sec"`
	Max   float64 `json:"max_sec"`
	// TargetP95 echoes the SLO target (0 = unconstrained); Met reports
	// whether P95 ≤ TargetP95.
	TargetP95 float64 `json:"target_p95_sec,omitempty"`
	Met       bool    `json:"met"`
}

// FleetPoint is one swept fleet size.
type FleetPoint struct {
	Shards  int `json:"shards"`
	Workers int `json:"workers_per_shard"`
	// ByClass holds stats for every class that submitted jobs.
	ByClass map[string]ClassStats `json:"by_class"`
	// MakespanSeconds is when the last job completes.
	MakespanSeconds float64 `json:"makespan_sec"`
	// Utilization is busy-seconds over (makespan × total workers).
	Utilization float64 `json:"utilization"`
	// Feasible reports whether every SLO-constrained class met its
	// target at this fleet size.
	Feasible bool `json:"feasible"`
}

// PlanResult is the full sweep plus the answer.
type PlanResult struct {
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	Jobs     int    `json:"jobs"`
	// PredictedWorkSeconds is the calibrated total solve time of the
	// workload on one worker — the lower bound no fleet can beat ÷ K.
	PredictedWorkSeconds float64      `json:"predicted_work_sec"`
	Points               []FleetPoint `json:"points"`
	// RecommendedShards is the smallest swept fleet meeting every SLO
	// target; 0 when none does.
	RecommendedShards int `json:"recommended_shards"`
}

// Plan generates the workload timeline and simulates it at every fleet
// size in the range. The simulation is a deterministic event-driven
// queue: jobs arrive at their planned instants, dispatch FCFS to the
// earliest-available of Shards×Workers identical workers (lowest index
// on ties), and hold a worker for the calibrated predicted solve time.
// Closed-loop clients are simulated on their planned think-time
// schedule — an optimistic open-loop approximation; the trade is
// determinism, which is what makes the golden test possible.
func Plan(opts PlanOptions) (*PlanResult, error) {
	minS, maxS := opts.MinShards, opts.MaxShards
	if minS <= 0 {
		minS = 1
	}
	if maxS < minS {
		maxS = minS * 16
	}
	workers := opts.WorkersPerShard
	if workers <= 0 {
		workers = 1
	}
	cal := opts.Cal
	if cal == (Calibration{}) {
		cal = Default()
	}
	if err := cal.Validate(); err != nil {
		return nil, err
	}
	for class := range opts.SLO {
		if service.ClassRank(class) > 2 {
			return nil, fmt.Errorf("calib: unknown SLO class %q", class)
		}
	}

	plan, err := workload.Generate(opts.Workload, opts.Seed)
	if err != nil {
		return nil, err
	}
	svc := make([]float64, len(plan.Subs))
	totalWork := 0.0
	for i, sub := range plan.Subs {
		svc[i] = cal.Seconds(sub.Spec)
		totalWork += svc[i]
	}

	res := &PlanResult{
		Workload:             plan.Workload,
		Seed:                 plan.Seed,
		Jobs:                 len(plan.Subs),
		PredictedWorkSeconds: totalWork,
	}
	for shards := minS; shards <= maxS; shards++ {
		pt := simulateFleet(plan, svc, shards, workers, opts.SLO)
		res.Points = append(res.Points, pt)
		if pt.Feasible && res.RecommendedShards == 0 && len(opts.SLO) > 0 {
			res.RecommendedShards = shards
		}
	}
	return res, nil
}

// simulateFleet runs the timeline against shards×workers workers.
func simulateFleet(plan *workload.Plan, svc []float64, shards, workers int, slo map[string]float64) FleetPoint {
	n := shards * workers
	avail := make([]float64, n) // next free instant per worker
	perClass := make(map[string][]float64)
	makespan, busy := 0.0, 0.0
	for i, sub := range plan.Subs {
		at := sub.At.Seconds()
		// Earliest-available worker, lowest index on ties.
		w := 0
		for j := 1; j < n; j++ {
			if avail[j] < avail[w] {
				w = j
			}
		}
		start := math.Max(at, avail[w])
		finish := start + svc[i]
		avail[w] = finish
		busy += svc[i]
		if finish > makespan {
			makespan = finish
		}
		perClass[sub.Class] = append(perClass[sub.Class], finish-at)
	}

	pt := FleetPoint{Shards: shards, Workers: workers, ByClass: make(map[string]ClassStats), MakespanSeconds: makespan, Feasible: true}
	if makespan > 0 {
		pt.Utilization = busy / (makespan * float64(n))
	}
	for _, class := range service.Classes() {
		lats := perClass[class]
		if len(lats) == 0 {
			continue
		}
		sort.Float64s(lats)
		sum := 0.0
		for _, l := range lats {
			sum += l
		}
		st := ClassStats{
			Count: len(lats),
			Mean:  sum / float64(len(lats)),
			P50:   quantile(lats, 0.50),
			P95:   quantile(lats, 0.95),
			Max:   lats[len(lats)-1],
			Met:   true,
		}
		if target, ok := slo[class]; ok {
			st.TargetP95 = target
			st.Met = st.P95 <= target
			if !st.Met {
				pt.Feasible = false
			}
		}
		pt.ByClass[class] = st
	}
	return pt
}

// quantile is the nearest-rank quantile of sorted values — exact, not
// interpolated, so plans are bit-stable across hosts.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

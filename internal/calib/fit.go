package calib

import (
	"fmt"
	"math"

	"github.com/uintah-repro/rmcrt/internal/service"
)

// Sample is one instrumented observation: a solved spec with its
// measured tracer counters and wall time. The counters come straight
// from the engine's TraceMetrics accounting (DDA cell-steps and rays,
// merged per tile), so the fit regresses wall time on the true work
// done, not on a model of it.
type Sample struct {
	// Name labels the configuration in reports and goldens.
	Name string `json:"name"`
	// Spec is the solved configuration.
	Spec service.Spec `json:"spec"`
	// Steps and Rays are the measured tracer counters.
	Steps float64 `json:"steps"`
	Rays  float64 `json:"rays"`
	// Seconds is the measured solve wall time.
	Seconds float64 `json:"seconds"`
}

// Fit derives a Calibration from instrumented samples:
//
//  1. The steps-model scale factors are the measured-over-model step
//     ratios per level count (ratio of sums, so large solves dominate
//     and tiny ones don't inject noise).
//  2. The cost coefficients solve the weighted least-squares problem
//     seconds ≈ base + perStep·steps + perRay·rays on the measured
//     counters, weighting each sample by 1/seconds² so the fit
//     minimizes *relative* residuals — the quantity MAPE scores —
//     instead of letting the largest solves dominate. It falls back to
//     fewer parameters (drop the ray term, then the intercept)
//     whenever the richer fit is singular or produces a negative rate,
//     so degenerate sweeps (one spec size, two samples) still
//     calibrate instead of erroring.
//
// The fit is deterministic: same samples in, bit-identical calibration
// out, which is what makes the golden-coefficients test meaningful.
func Fit(samples []Sample) (Calibration, error) {
	if len(samples) < 2 {
		return Calibration{}, fmt.Errorf("calib: need >= 2 samples to fit, have %d", len(samples))
	}
	for _, s := range samples {
		if !(s.Seconds > 0) || !(s.Steps > 0) {
			return Calibration{}, fmt.Errorf("calib: sample %q has non-positive seconds (%g) or steps (%g)",
				s.Name, s.Seconds, s.Steps)
		}
	}

	c := Calibration{Samples: len(samples)}

	// Steps-model correction per level count.
	var meas1, model1, meas2, model2 float64
	for _, s := range samples {
		m := ModelSteps(s.Spec)
		if s.Spec.Normalized().Levels == 2 {
			meas2 += s.Steps
			model2 += m
		} else {
			meas1 += s.Steps
			model1 += m
		}
	}
	c.StepsScale1, c.StepsScale2 = 1, 1
	if model1 > 0 && meas1 > 0 {
		c.StepsScale1 = meas1 / model1
	}
	if model2 > 0 && meas2 > 0 {
		c.StepsScale2 = meas2 / model2
	}

	// Least squares, richest model first: split step rates per level
	// class (the wavefront fast path prices single-level steps below
	// the level-crossing blend of 2-level marches), then a shared
	// rate, then progressively fewer parameters.
	if base, ps1, ps2, perRay, ok := fit4(samples); ok {
		c.SecondsBase, c.SecondsPerStep, c.SecondsPerStep2, c.SecondsPerRay = base, ps1, ps2, perRay
		if err := c.Validate(); err != nil {
			return Calibration{}, err
		}
		return c, nil
	}
	base, perStep, perRay, ok := fit3(samples)
	if !ok {
		base, perStep, ok = fit2(samples)
		perRay = 0
	}
	if !ok {
		base, perRay = 0, 0
		perStep = fitThroughOrigin(samples)
	}
	c.SecondsBase, c.SecondsPerStep, c.SecondsPerRay = base, perStep, perRay
	if err := c.Validate(); err != nil {
		return Calibration{}, err
	}
	return c, nil
}

// fit4 solves seconds = b0 + b1·steps₁ + b2·steps₂ + b3·rays, where
// steps₁/steps₂ are the measured steps of single-level and 2-level
// samples respectively (each sample contributes to exactly one). ok is
// false when either level class is absent or too thin to identify its
// rate, the normal equations are singular, or any coefficient is not a
// usable price (negative or non-finite).
func fit4(samples []Sample) (base, perStep1, perStep2, perRay float64, ok bool) {
	var n1, n2 int
	for _, s := range samples {
		if s.Spec.Normalized().Levels == 2 {
			n2++
		} else {
			n1++
		}
	}
	if n1 < 2 || n2 < 2 {
		return 0, 0, 0, 0, false
	}
	var a [4][5]float64
	for _, s := range samples {
		w := relWeight(s)
		var s1, s2 float64
		if s.Spec.Normalized().Levels == 2 {
			s2 = s.Steps
		} else {
			s1 = s.Steps
		}
		x := [4]float64{1, s1, s2, s.Rays}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				a[i][j] += w * x[i] * x[j]
			}
			a[i][4] += w * x[i] * s.Seconds
		}
	}
	b, ok := solve4(&a)
	if !ok {
		return 0, 0, 0, 0, false
	}
	base, perStep1, perStep2, perRay = b[0], b[1], b[2], b[3]
	if !(perStep1 > 0) || !(perStep2 > 0) || perRay < 0 || base < 0 ||
		math.IsInf(base, 0) || math.IsInf(perStep1, 0) ||
		math.IsInf(perStep2, 0) || math.IsInf(perRay, 0) {
		return 0, 0, 0, 0, false
	}
	return base, perStep1, perStep2, perRay, true
}

// solve4 runs Gaussian elimination with partial pivoting on the 4×5
// augmented system.
func solve4(a *[4][5]float64) ([4]float64, bool) {
	var x [4]float64
	for col := 0; col < 4; col++ {
		piv := col
		for r := col + 1; r < 4; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		if a[col][col] == 0 {
			return x, false
		}
		for r := col + 1; r < 4; r++ {
			f := a[r][col] / a[col][col]
			for j := col; j < 5; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	for i := 3; i >= 0; i-- {
		v := a[i][4]
		for j := i + 1; j < 4; j++ {
			v -= a[i][j] * x[j]
		}
		x[i] = v / a[i][i]
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return x, false
		}
	}
	return x, true
}

// fit3 solves seconds = b0 + b1·steps + b2·rays; ok is false when the
// normal equations are singular or the result is not a usable pricing
// model (negative or non-finite rates/intercept).
func fit3(samples []Sample) (base, perStep, perRay float64, ok bool) {
	var a [3][4]float64 // augmented normal equations
	for _, s := range samples {
		w := relWeight(s)
		x := [3]float64{1, s.Steps, s.Rays}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a[i][j] += w * x[i] * x[j]
			}
			a[i][3] += w * x[i] * s.Seconds
		}
	}
	b, ok := solve(&a)
	if !ok {
		return 0, 0, 0, false
	}
	base, perStep, perRay = b[0], b[1], b[2]
	if !(perStep > 0) || perRay < 0 || base < 0 ||
		math.IsInf(base, 0) || math.IsInf(perStep, 0) || math.IsInf(perRay, 0) {
		return 0, 0, 0, false
	}
	return base, perStep, perRay, true
}

// fit2 solves seconds = b0 + b1·steps.
func fit2(samples []Sample) (base, perStep float64, ok bool) {
	var n, sx, sy, sxx, sxy float64
	for _, s := range samples {
		w := relWeight(s)
		n += w
		sx += w * s.Steps
		sy += w * s.Seconds
		sxx += w * s.Steps * s.Steps
		sxy += w * s.Steps * s.Seconds
	}
	det := n*sxx - sx*sx
	if det == 0 || math.IsInf(det, 0) {
		return 0, 0, false
	}
	perStep = (n*sxy - sx*sy) / det
	base = (sy - perStep*sx) / n
	if !(perStep > 0) || base < 0 || math.IsInf(perStep, 0) || math.IsInf(base, 0) {
		return 0, 0, false
	}
	return base, perStep, true
}

// fitThroughOrigin is the last-resort single-parameter model: the
// weighted regression of seconds on steps through the origin. Always
// positive for valid samples, so Fit cannot fail after reaching it.
func fitThroughOrigin(samples []Sample) float64 {
	var num, den float64
	for _, s := range samples {
		w := relWeight(s)
		num += w * s.Steps * s.Seconds
		den += w * s.Steps * s.Steps
	}
	return num / den
}

// relWeight is the 1/seconds² weight that turns squared absolute
// residuals into squared relative ones.
func relWeight(s Sample) float64 { return 1 / (s.Seconds * s.Seconds) }

// solve runs Gaussian elimination with partial pivoting on the 3×4
// augmented system.
func solve(a *[3][4]float64) ([3]float64, bool) {
	var x [3]float64
	for col := 0; col < 3; col++ {
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		if a[col][col] == 0 {
			return x, false
		}
		for r := col + 1; r < 3; r++ {
			f := a[r][col] / a[col][col]
			for j := col; j < 4; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	for i := 2; i >= 0; i-- {
		v := a[i][3]
		for j := i + 1; j < 3; j++ {
			v -= a[i][j] * x[j]
		}
		x[i] = v / a[i][i]
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return x, false
		}
	}
	return x, true
}

// ReportRow is one configuration's predicted-vs-measured comparison.
type ReportRow struct {
	Name         string  `json:"name"`
	Levels       int     `json:"levels"`
	Cells        int64   `json:"cells"`
	Rays         int     `json:"rays"`
	MeasuredSec  float64 `json:"measured_sec"`
	PredictedSec float64 `json:"predicted_sec"`
	// AbsPctErr is |predicted-measured|/measured × 100.
	AbsPctErr float64 `json:"abs_pct_err"`
}

// Report is the loop's validation artifact: per-config rows plus the
// two pinned aggregate metrics the acceptance gate checks.
type Report struct {
	Rows []ReportRow `json:"rows"`
	// MAPE is the mean absolute percentage error of predicted vs
	// measured wall time, in percent.
	MAPE float64 `json:"mape_pct"`
	// PearsonR is the linear correlation of predicted vs measured.
	PearsonR float64 `json:"pearson_r"`
}

// Evaluate scores the calibration against measured samples. The
// prediction goes through the full spec path (Calibration.Seconds) —
// model steps with the calibrated correction, not the sample's
// measured counters — so the report measures what admission control
// will actually see.
func Evaluate(c Calibration, samples []Sample) Report {
	var rep Report
	var sumPct float64
	pred := make([]float64, len(samples))
	meas := make([]float64, len(samples))
	for i, s := range samples {
		n := s.Spec.Normalized()
		p := c.Seconds(s.Spec)
		pct := math.Abs(p-s.Seconds) / s.Seconds * 100
		sumPct += pct
		pred[i], meas[i] = p, s.Seconds
		rep.Rows = append(rep.Rows, ReportRow{
			Name: s.Name, Levels: n.Levels, Cells: n.Cells(), Rays: n.Rays,
			MeasuredSec: s.Seconds, PredictedSec: p, AbsPctErr: pct,
		})
	}
	if len(samples) > 0 {
		rep.MAPE = sumPct / float64(len(samples))
	}
	rep.PearsonR = PearsonR(pred, meas)
	return rep
}

// PearsonR returns the linear correlation coefficient of x and y
// (0 when either is degenerate).
func PearsonR(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MAPE returns the mean absolute percentage error of predictions pred
// against measurements meas, in percent.
func MAPE(pred, meas []float64) float64 {
	if len(pred) != len(meas) || len(pred) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for i := range pred {
		sum += math.Abs(pred[i]-meas[i]) / meas[i] * 100
	}
	return sum / float64(len(pred))
}

// Package calib closes the observe-predict-calibrate loop between the
// analytical cost model (internal/perfmodel, internal/sim) and real
// measurements: it derives per-step/per-ray/per-solve cost
// coefficients from instrumented runs (the tracer's DDA step and ray
// counters plus wall time), packages them as a Calibration that
// predicts wall-seconds for any service.Spec before solving it, and
// validates the prediction with MAPE and Pearson-r against held
// measurements.
//
// The calibration surface is deliberately minimal — three fitted
// coefficients plus one steps-model scale factor per level count —
// following the "literature-backed model, few calibrated parameters,
// MAPE/Pearson-validated" discipline rather than a lookup table: small
// surfaces transfer across hosts and stay diagnosable when they drift.
//
// One model serves everything downstream: the cluster router's
// shortest-job-first ordering key and deadline feasibility check
// (internal/cluster), the daemon's admission-time estimator
// (internal/service via its CostModel hook), the capacity planner
// (cmd/capacity), and the simulator's machine constants
// (Calibration.Machine).
package calib

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"github.com/uintah-repro/rmcrt/internal/perfmodel"
	"github.com/uintah-repro/rmcrt/internal/service"
)

// Calibration prices a solve before running it: predicted wall-seconds
// as an affine function of the analytically predicted step and ray
// counts. The zero value predicts 0 for everything; use Default or Fit.
type Calibration struct {
	// SecondsPerStep is the fitted marginal cost of one DDA cell-step
	// in a single-level solve (all steps on the wavefront fast path).
	SecondsPerStep float64 `json:"seconds_per_step"`
	// SecondsPerStep2 is the fitted marginal per-step cost of 2-level
	// solves. The batched marcher made fine-ROI fast-path steps
	// cheaper without touching the level-crossing slow path, so the
	// blended per-step cost of a multi-level march is systematically
	// higher than a single-level one; a shared rate would mis-rank
	// specs across the level classes. 0 means "unfitted, use
	// SecondsPerStep" (degenerate sweeps, pre-existing calibration
	// files).
	SecondsPerStep2 float64 `json:"seconds_per_step_2,omitempty"`
	// SecondsPerRay is the fitted marginal cost of one ray (launch,
	// direction sampling, result merge) beyond its stepping.
	SecondsPerRay float64 `json:"seconds_per_ray"`
	// SecondsBase is the fitted per-solve fixed cost (grid build,
	// property fill, scheduling).
	SecondsBase float64 `json:"seconds_base"`
	// StepsScale1 and StepsScale2 are measured-over-model step-count
	// ratios for single-level and 2-level solves: they absorb the
	// systematic error of the mean-chord step model so the fitted
	// per-step cost applies to an unbiased step estimate. 0 means
	// "uncalibrated, use 1".
	StepsScale1 float64 `json:"steps_scale_1"`
	StepsScale2 float64 `json:"steps_scale_2"`

	// Provenance of the fit (informational).
	Host       string `json:"host,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	Samples    int    `json:"samples,omitempty"`
}

// Default returns the uncalibrated model: pure steps-proportional at
// Titan's per-core CPU tracing rate (internal/perfmodel). Because it is
// a fixed positive multiple of the analytical step count, SJF ordering
// under Default is identical to ordering by raw predicted cell-steps —
// the pre-calibration behavior — while still reading as seconds.
func Default() Calibration {
	return Calibration{
		SecondsPerStep: 1 / perfmodel.Titan().CPUThroughput,
		StepsScale1:    1,
		StepsScale2:    1,
	}
}

// ModelSteps predicts the total DDA cell-step count of a spec's solve
// from internal/perfmodel's mean-chord model: for 2-level
// configurations the per-patch kernel work times the patch count, and
// for single-level solves cells × rays × the mean-chord step count of
// the cube. This is the analytical half of the loop — no measured
// quantities. The per-cell ray budget is the spec's pricing bound
// (Spec.CostRays): AdaptiveMaxRays for adaptive solves and ×K bands
// for spectral ones, keeping predictions feasibility-safe upper
// bounds for those modes.
func ModelSteps(spec service.Spec) float64 {
	n := spec.Normalized()
	rays := n.CostRays()
	if n.Levels == 2 && n.RR > 0 && n.N%n.RR == 0 && n.PatchN > 0 && n.N%n.PatchN == 0 {
		p := perfmodel.Problem{
			FineN: n.N, CoarseN: n.N / n.RR, PatchN: n.PatchN,
			Rays: rays, Props: 3, Halo: n.Halo,
		}
		// Guard the model output: extreme-but-valid specs can overflow
		// the integer patch count, and a poisoned ordering key would
		// corrupt the SJF heap invariant downstream.
		if p.Validate() == nil {
			if w := p.KernelWork() * float64(p.FinePatches()); w > 0 && !math.IsInf(w, 0) {
				return w
			}
		}
	}
	// Single level: rays originate anywhere in the cube and march to a
	// wall — half the mean chord, 1.5 axis steps per chord cell. All
	// float math: N³ in int64 overflows long before float64 loses the
	// ordering.
	steps := 0.66 * 1.5 * float64(n.N) / 2
	cells := float64(n.N) * float64(n.N) * float64(n.N)
	return cells * float64(rays) * steps
}

// ModelRays predicts the ray count of a spec's solve: one priced ray
// budget (Spec.CostRays — the adaptive/spectral upper bound) per fine
// cell, both single- and 2-level (rays originate on the fine level
// only).
func ModelRays(spec service.Spec) float64 {
	n := spec.Normalized()
	return float64(n.Cells()) * float64(n.CostRays())
}

// stepsScale returns the level-appropriate model correction.
func (c Calibration) stepsScale(levels int) float64 {
	s := c.StepsScale1
	if levels == 2 {
		s = c.StepsScale2
	}
	if s <= 0 || math.IsInf(s, 0) || math.IsNaN(s) {
		return 1
	}
	return s
}

// Steps predicts the spec's DDA cell-step count with the calibrated
// model correction applied.
func (c Calibration) Steps(spec service.Spec) float64 {
	return c.stepsScale(spec.Normalized().Levels) * ModelSteps(spec)
}

// perStep returns the level-appropriate fitted step rate.
func (c Calibration) perStep(levels int) float64 {
	if levels == 2 && c.SecondsPerStep2 > 0 && !math.IsInf(c.SecondsPerStep2, 0) {
		return c.SecondsPerStep2
	}
	return c.SecondsPerStep
}

// Seconds predicts the spec's solve wall time on the calibrated host.
func (c Calibration) Seconds(spec service.Spec) float64 {
	levels := spec.Normalized().Levels
	return c.SecondsBase + c.perStep(levels)*c.Steps(spec) + c.SecondsPerRay*ModelRays(spec)
}

// SecondsFromCounters prices a solve from raw step and ray counts —
// the same affine model Seconds uses, for callers that hold measured
// counters instead of a spec.
func (c Calibration) SecondsFromCounters(steps, rays float64) float64 {
	return c.SecondsBase + c.SecondsPerStep*steps + c.SecondsPerRay*rays
}

// Machine returns m with its per-core CPU tracing throughput replaced
// by the calibrated steps-per-second rate, so internal/sim sweeps run
// on measured constants instead of the hand-tuned Titan numbers. Only
// the CPU rate is replaced: the calibration is host-CPU-derived and
// says nothing about m's GPU or interconnect.
func (c Calibration) Machine(m perfmodel.Machine) perfmodel.Machine {
	if c.SecondsPerStep > 0 && !math.IsInf(c.SecondsPerStep, 0) {
		m.CPUThroughput = 1 / c.SecondsPerStep
	}
	return m
}

// Validate checks that the calibration prices work sanely: positive
// finite per-step cost, non-negative finite everything else.
func (c Calibration) Validate() error {
	if !(c.SecondsPerStep > 0) || math.IsInf(c.SecondsPerStep, 0) {
		return fmt.Errorf("calib: seconds_per_step = %g (want finite > 0)", c.SecondsPerStep)
	}
	for _, v := range []struct {
		name string
		x    float64
	}{
		{"seconds_per_step_2", c.SecondsPerStep2},
		{"seconds_per_ray", c.SecondsPerRay},
		{"seconds_base", c.SecondsBase},
	} {
		if v.x < 0 || math.IsInf(v.x, 0) || math.IsNaN(v.x) {
			return fmt.Errorf("calib: %s = %g (want finite >= 0)", v.name, v.x)
		}
	}
	return nil
}

// Save writes the calibration as indented JSON.
func (c Calibration) Save(path string) error {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Load reads a calibration and validates it. It accepts both a bare
// Calibration (written by Save) and the perfgate -calibrate artifact,
// which nests the coefficients under a "calibration" member next to
// their predicted-vs-measured report — so the nightly artifact can be
// handed straight to rmcrtd/rmcrtrouter/capacity -calibration.
func Load(path string) (Calibration, error) {
	var c Calibration
	b, err := os.ReadFile(path)
	if err != nil {
		return c, err
	}
	var envelope struct {
		Calibration *Calibration `json:"calibration"`
	}
	if err := json.Unmarshal(b, &envelope); err == nil && envelope.Calibration != nil {
		c = *envelope.Calibration
		if err := c.Validate(); err != nil {
			return c, fmt.Errorf("calib: %s: %w", path, err)
		}
		return c, nil
	}
	if err := json.Unmarshal(b, &c); err != nil {
		return c, fmt.Errorf("calib: %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return c, fmt.Errorf("calib: %s: %w", path, err)
	}
	return c, nil
}

package calib

import (
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"github.com/uintah-repro/rmcrt/internal/perfmodel"
	"github.com/uintah-repro/rmcrt/internal/service"
)

var update = flag.Bool("update", false, "rewrite golden files")

func loadSamples(t *testing.T) []Sample {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "samples.json"))
	if err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	if err := json.Unmarshal(b, &samples); err != nil {
		t.Fatal(err)
	}
	if len(samples) < 8 {
		t.Fatalf("fixture has %d samples, want >= 8", len(samples))
	}
	return samples
}

// The fit is a pure function of its samples, so the coefficients
// derived from the checked-in instrumented sweep are pinned as a
// golden file: any change to the fitting math shows up as a readable
// coefficient diff. Regenerate with -update in the same commit as a
// deliberate model change.
func TestFitGoldenCoefficients(t *testing.T) {
	samples := loadSamples(t)
	c, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "calibration.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(got) != string(want) {
		t.Errorf("fitted coefficients drifted from golden:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// The acceptance gate of the observe-predict-calibrate loop: a short
// instrumented sweep (>= 8 configurations spanning sizes and level
// structures), fitted and then scored through the full spec-level
// prediction path, must reach MAPE <= 30% and Pearson r >= 0.9 — at
// each of the paper-style thread counts, since per-step cost depends
// on parallel efficiency and each setting gets its own calibration.
func TestCalibrationAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("instrumented sweep is wall-time-sensitive; skipped in -short")
	}
	for _, procs := range []int{1, 4, 16} {
		t.Run(map[int]string{1: "gomaxprocs-1", 4: "gomaxprocs-4", 16: "gomaxprocs-16"}[procs], func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			c, rep, err := Calibrate(context.Background(), MeasureOptions{Repeats: 2})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(rep.Rows) < 8 {
				t.Fatalf("report covers %d configurations, want >= 8", len(rep.Rows))
			}
			if rep.MAPE > 30 {
				t.Errorf("MAPE = %.2f%%, want <= 30%%\n%s", rep.MAPE, reportText(rep))
			}
			if rep.PearsonR < 0.9 {
				t.Errorf("Pearson r = %.4f, want >= 0.9\n%s", rep.PearsonR, reportText(rep))
			}
			if c.GoMaxProcs != procs {
				t.Errorf("calibration records gomaxprocs %d, want %d", c.GoMaxProcs, procs)
			}
		})
	}
}

func reportText(rep Report) string {
	b, _ := json.MarshalIndent(rep, "", "  ")
	return string(b)
}

// SJF dispatch orders by predicted cost, so the calibrated prediction
// must rank specs the way measured solve time ranks them. Exact rank
// equality on near-ties would just test noise; the contract is on
// clearly separated pairs (>= 1.5x measured gap).
func TestSJFOrderMatchesMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("instrumented sweep is wall-time-sensitive; skipped in -short")
	}
	samples, err := Measure(context.Background(), MeasureOptions{Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].Seconds < samples[j].Seconds })
	for i := range samples {
		for j := i + 1; j < len(samples); j++ {
			if samples[j].Seconds < samples[i].Seconds*1.5 {
				continue
			}
			pi, pj := c.Seconds(samples[i].Spec), c.Seconds(samples[j].Spec)
			if pi >= pj {
				t.Errorf("SJF inversion: %s measured %.4fs predicted %.4fs, but %s measured %.4fs predicted %.4fs",
					samples[i].Name, samples[i].Seconds, pi,
					samples[j].Name, samples[j].Seconds, pj)
			}
		}
	}
}

// Default() must preserve the pre-calibration SJF behavior exactly:
// it is a fixed positive multiple of the analytical step count, so
// ordering by Default().Seconds is ordering by ModelSteps.
func TestDefaultPreservesStepOrder(t *testing.T) {
	specs := DefaultSpecs()
	d := Default()
	for i := range specs {
		for j := range specs {
			si, sj := ModelSteps(specs[i]), ModelSteps(specs[j])
			pi, pj := d.Seconds(specs[i]), d.Seconds(specs[j])
			if (si < sj) != (pi < pj) {
				t.Fatalf("Default() reorders %s vs %s: steps %g vs %g, seconds %g vs %g",
					SpecName(specs[i]), SpecName(specs[j]), si, sj, pi, pj)
			}
		}
	}
	if d.Seconds(specs[0]) <= 0 {
		t.Fatal("Default() prices a valid spec at <= 0 seconds")
	}
}

// Degenerate sweeps (every sample the same size) make the full and
// 2-parameter systems singular; Fit must still produce a valid
// calibration via the through-origin fallback rather than erroring.
func TestFitDegenerateFallsBack(t *testing.T) {
	spec := service.Spec{Kind: service.KindBenchmark, N: 8, Rays: 8}
	samples := []Sample{
		{Name: "a", Spec: spec, Steps: 1000, Rays: 100, Seconds: 0.010},
		{Name: "b", Spec: spec, Steps: 1000, Rays: 100, Seconds: 0.012},
	}
	c, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.SecondsPerStep <= 0 {
		t.Fatalf("SecondsPerStep = %g, want > 0", c.SecondsPerStep)
	}
}

func TestFitRejectsBadSamples(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("Fit(nil) succeeded, want error")
	}
	bad := []Sample{
		{Name: "a", Steps: 1000, Seconds: 0.01},
		{Name: "zero-wall", Steps: 1000, Seconds: 0},
	}
	if _, err := Fit(bad); err == nil {
		t.Error("Fit with zero wall time succeeded, want error")
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	samples := loadSamples(t)
	c, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cal.json")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, c)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"seconds_per_step": -1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("Load accepted a negative per-step cost")
	}
}

// Calibration.Machine feeds the measured rate back into the simulator:
// the returned machine's CPU throughput must be the reciprocal of the
// fitted per-step cost, with everything else untouched.
func TestMachineCalibration(t *testing.T) {
	base := perfmodel.Titan()
	c := Calibration{SecondsPerStep: 2e-8}
	m := c.Machine(base)
	if want := 5e7; m.CPUThroughput != want {
		t.Errorf("CPUThroughput = %g, want %g", m.CPUThroughput, want)
	}
	if m.NetBandwidth != base.NetBandwidth || m.CoresPerNode != base.CoresPerNode {
		t.Error("Machine() touched fields beyond CPUThroughput")
	}
	if m := (Calibration{}).Machine(base); m != base {
		t.Error("zero calibration must leave the machine unchanged")
	}
}

func TestPearsonAndMAPE(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if r := PearsonR(x, y); math.Abs(r-1) > 1e-12 {
		t.Errorf("PearsonR of perfectly linear data = %g, want 1", r)
	}
	if r := PearsonR(x, []float64{1, 1, 1, 1}); r != 0 {
		t.Errorf("PearsonR with degenerate y = %g, want 0", r)
	}
	if m := MAPE([]float64{110, 90}, []float64{100, 100}); math.Abs(m-10) > 1e-12 {
		t.Errorf("MAPE = %g, want 10", m)
	}
}

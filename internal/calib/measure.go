package calib

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/uintah-repro/rmcrt/internal/service"
)

// MeasureOptions shapes an instrumented calibration run.
type MeasureOptions struct {
	// Specs are the configurations to solve; empty means DefaultSpecs.
	Specs []service.Spec
	// Repeats solves each spec this many times and keeps the fastest
	// wall time — the standard benchmarking defense against scheduler
	// noise on short solves. Default 2.
	Repeats int
	// Warmup runs one untimed solve of the first spec before measuring
	// (JIT-free Go still benefits: page faults, CPU frequency ramp,
	// allocator warm-up). Default on; set SkipWarmup to disable.
	SkipWarmup bool
}

// DefaultSpecs is the standard calibration sweep: ≥8 configurations
// spanning ~50× in predicted work across resolutions, ray budgets and
// both level structures, so the fit is anchored at both ends of the
// sizes the serving path admits and the level-specific model
// corrections each see several points.
func DefaultSpecs() []service.Spec {
	return []service.Spec{
		{Kind: service.KindBenchmark, N: 8, Rays: 6, Seed: 11},
		{Kind: service.KindBenchmark, N: 8, Rays: 24, Seed: 12},
		{Kind: service.KindBenchmark, N: 12, Rays: 8, Seed: 13},
		{Kind: service.KindBenchmark, N: 12, Rays: 24, Seed: 14},
		{Kind: service.KindBenchmark, N: 16, Rays: 8, Seed: 15},
		{Kind: service.KindBenchmark, N: 16, Rays: 24, Seed: 16},
		{Kind: service.KindBenchmark, N: 16, Levels: 2, PatchN: 8, RR: 2, Rays: 8, Seed: 17},
		{Kind: service.KindBenchmark, N: 16, Levels: 2, PatchN: 8, RR: 2, Rays: 24, Seed: 18},
		{Kind: service.KindBenchmark, N: 24, Rays: 8, Seed: 19},
		{Kind: service.KindBenchmark, N: 24, Levels: 2, PatchN: 8, RR: 2, Rays: 12, Seed: 20},
	}
}

// SpecName renders a compact configuration label for reports.
func SpecName(spec service.Spec) string {
	n := spec.Normalized()
	if n.Levels == 2 {
		return fmt.Sprintf("n%d-p%d-rr%d-r%d-2L", n.N, n.PatchN, n.RR, n.Rays)
	}
	return fmt.Sprintf("n%d-r%d-1L", n.N, n.Rays)
}

// Measure runs the instrumented sweep: each spec is solved Repeats
// times through the real engine, and the fastest wall time together
// with the engine's exact step/ray counters becomes one Sample. The
// counters are deterministic for a given spec (seeded solver); only
// the wall time is host-dependent.
func Measure(ctx context.Context, opts MeasureOptions) ([]Sample, error) {
	specs := opts.Specs
	if len(specs) == 0 {
		specs = DefaultSpecs()
	}
	repeats := opts.Repeats
	if repeats <= 0 {
		repeats = 2
	}
	if !opts.SkipWarmup {
		if _, _, _, err := specs[0].Solve(ctx); err != nil {
			return nil, fmt.Errorf("calib: warmup solve: %w", err)
		}
	}
	samples := make([]Sample, 0, len(specs))
	for _, spec := range specs {
		var best Sample
		for rep := 0; rep < repeats; rep++ {
			start := time.Now()
			_, rays, steps, err := spec.Solve(ctx)
			wall := time.Since(start).Seconds()
			if err != nil {
				return nil, fmt.Errorf("calib: solve %s: %w", SpecName(spec), err)
			}
			if rep == 0 || wall < best.Seconds {
				best = Sample{
					Name:    SpecName(spec),
					Spec:    spec.Normalized(),
					Steps:   float64(steps),
					Rays:    float64(rays),
					Seconds: wall,
				}
			}
		}
		samples = append(samples, best)
	}
	return samples, nil
}

// Calibrate runs the whole loop: measure, fit, evaluate. The returned
// report scores the fitted calibration on the very sweep it was fitted
// from — the in-sample check the acceptance gate pins (MAPE ≤ 30%,
// Pearson r ≥ 0.9); cross-host validation is the nightly job's.
func Calibrate(ctx context.Context, opts MeasureOptions) (Calibration, Report, error) {
	samples, err := Measure(ctx, opts)
	if err != nil {
		return Calibration{}, Report{}, err
	}
	c, err := Fit(samples)
	if err != nil {
		return Calibration{}, Report{}, err
	}
	host, _ := os.Hostname()
	c.Host = host
	c.GoMaxProcs = runtime.GOMAXPROCS(0)
	return c, Evaluate(c, samples), nil
}

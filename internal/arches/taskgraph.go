package arches

import (
	"fmt"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/sched"
)

// Task-graph form of the energy equation. The monolithic Solver in
// arches.go integrates one big patch; production Uintah instead runs
// one task per patch per Runge–Kutta stage, with ghost exchanges
// between stages — the structure that gives the scheduler work to
// overlap. TimestepGraph builds exactly that: for SSP-RK2,
//
//	stage 1 (per patch): u1 = T + dt·L(T)        requires T  (ghost 1)
//	stage 2 (per patch): T' = ½T + ½(u1 + dt·L(u1)) requires u1 (ghost 1)
//
// where L is the conduction + source operator. The tests check the
// multi-patch graph reproduces the monolithic solver bitwise.

// Variable labels used by the energy task graph.
const (
	LabelT   = "temperature"
	LabelRK1 = "temperature_rk1"
)

// TimestepGraph registers one energy timestep over a patch-decomposed
// level.
type TimestepGraph struct {
	Cfg   Config
	Grid  *grid.Grid
	Level int
	Dt    float64
	// DivQ, when non-nil, supplies the radiative source per patch
	// (from a previous radiation solve); nil means no radiation.
	DivQ func(p *grid.Patch) *field.CC[float64]
	// ExtraDeps are appended to every stage-1 task's requirements —
	// the hook through which a same-timestep radiation solve orders
	// itself before the energy update (the DivQ callback then reads
	// the freshly computed source from the warehouse).
	ExtraDeps []sched.Dep
}

// Register adds the timestep's tasks to s. The old warehouse must hold
// LabelT for every patch of the level; the new warehouse receives the
// advanced LabelT.
func (tg *TimestepGraph) Register(s *sched.Scheduler) error {
	if tg.Grid == nil {
		return fmt.Errorf("arches: timestep graph needs a grid")
	}
	if tg.Cfg.RKOrder != 1 && tg.Cfg.RKOrder != 2 {
		return fmt.Errorf("arches: task-graph timestep supports RK order 1 or 2, got %d", tg.Cfg.RKOrder)
	}
	if tg.Dt <= 0 {
		return fmt.Errorf("arches: non-positive dt")
	}
	lvl := tg.Grid.Levels[tg.Level]

	for _, p := range lvl.Patches {
		p := p
		// Stage 1: forward-Euler predictor from the old temperature.
		s.AddTask(&sched.Task{
			Name:  "arches::rk1",
			Patch: p,
			// The T dependency comes from the previous generation.
			Requires: append([]sched.Dep{{Label: LabelT, Level: tg.Level, Ghost: 1, FromOld: true}},
				tg.ExtraDeps...),
			Computes: []sched.Compute{{Label: LabelRK1, Level: tg.Level}},
			Run: func(c *sched.Context) error {
				win, err := c.OldDW().GatherWindow(LabelT, lvl, p.Cells.Grow(1))
				if err != nil {
					return err
				}
				u1 := tg.eulerStage(lvl, p, win)
				if tg.Cfg.RKOrder == 1 {
					c.DW().PutCC(LabelRK1, p.ID, u1) // satisfy graph
					c.DW().PutCC(LabelT, p.ID, u1)   // final answer
					return nil
				}
				c.DW().PutCC(LabelRK1, p.ID, u1)
				return nil
			},
		})
		if tg.Cfg.RKOrder == 1 {
			continue
		}
		// Stage 2: SSP average using the predictor's ghosts.
		s.AddTask(&sched.Task{
			Name:     "arches::rk2",
			Patch:    p,
			Requires: []sched.Dep{{Label: LabelRK1, Level: tg.Level, Ghost: 1}},
			Computes: []sched.Compute{{Label: LabelT, Level: tg.Level}},
			Run: func(c *sched.Context) error {
				u1win, err := c.DW().GatherWindow(LabelRK1, lvl, p.Cells.Grow(1))
				if err != nil {
					return err
				}
				u1adv := tg.eulerStage(lvl, p, u1win)
				told, err := c.OldDW().GetCC(LabelT, p.ID)
				if err != nil {
					return err
				}
				out := field.NewCC[float64](p.Cells)
				p.Cells.ForEach(func(ci grid.IntVector) {
					out.Set(ci, 0.5*told.At(ci)+0.5*u1adv.At(ci))
				})
				c.DW().PutCC(LabelT, p.ID, out)
				return nil
			},
		})
	}
	return nil
}

// eulerStage computes u + dt·L(u) over patch p from the ghosted window
// win (which carries neighbour values; cells outside the level use the
// wall temperature).
func (tg *TimestepGraph) eulerStage(lvl *grid.Level, p *grid.Patch, win *field.CC[float64]) *field.CC[float64] {
	cfg := tg.Cfg
	dx := lvl.CellSize()
	invRC := 1 / (cfg.Rho * cfg.Cv)
	k := cfg.Conductivity
	levelBox := lvl.IndexBox()
	var divQ *field.CC[float64]
	if tg.DivQ != nil {
		divQ = tg.DivQ(p)
	}

	out := field.NewCC[float64](p.Cells)
	p.Cells.ForEach(func(c grid.IntVector) {
		lap := 0.0
		for ax := 0; ax < 3; ax++ {
			h := dx.Component(ax)
			up := c.WithComponent(ax, c.Component(ax)+1)
			dn := c.WithComponent(ax, c.Component(ax)-1)
			tu, td := cfg.WallTemp, cfg.WallTemp
			if levelBox.Contains(up) {
				tu = win.At(up)
			}
			if levelBox.Contains(dn) {
				td = win.At(dn)
			}
			lap += (tu - 2*win.At(c) + td) / (h * h)
		}
		src := cfg.HeatSource
		if divQ != nil {
			src -= divQ.At(c)
		}
		out.Set(c, win.At(c)+tg.Dt*invRC*(k*lap+src))
	})
	return out
}

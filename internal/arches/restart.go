package arches

import (
	"fmt"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/uda"
)

// Checkpoint/restart. The second purpose of Uintah's data archive is
// restarting long runs mid-flight; a restarted simulation must continue
// bit-for-bit as if it had never stopped. The solver's full state is
// the temperature field, the last radiative source, and the step
// counter (which also fixes the radiation-period phase).

// Archive labels used by checkpoints.
const (
	ckptTemp = "checkpoint_T"
	ckptDivQ = "checkpoint_divQ"
)

// Checkpoint writes the solver's state as timestep s.Step() of the
// archive.
func (s *Solver) Checkpoint(a *uda.Archive) error {
	ts := s.step
	if err := a.SaveCC(ts, ckptTemp, 0, s.T); err != nil {
		return fmt.Errorf("arches: checkpoint: %w", err)
	}
	if err := a.SaveCC(ts, ckptDivQ, 0, s.DivQ); err != nil {
		return fmt.Errorf("arches: checkpoint: %w", err)
	}
	return nil
}

// Restart builds a solver that resumes from checkpoint timestep ts of
// the archive: identical configuration and grid are the caller's
// responsibility (as with Uintah restarts).
func Restart(cfg Config, lvl *grid.Level, abskg *field.CC[float64], a *uda.Archive, ts int) (*Solver, error) {
	s, err := NewSolver(cfg, lvl, func(x, y, z float64) float64 { return 0 }, abskg)
	if err != nil {
		return nil, err
	}
	T, err := a.LoadCC(ts, ckptTemp, 0)
	if err != nil {
		return nil, fmt.Errorf("arches: restart: %w", err)
	}
	dq, err := a.LoadCC(ts, ckptDivQ, 0)
	if err != nil {
		return nil, fmt.Errorf("arches: restart: %w", err)
	}
	if T.Box() != lvl.IndexBox() || dq.Box() != lvl.IndexBox() {
		return nil, fmt.Errorf("arches: restart: checkpoint grid %v does not match level %v",
			T.Box(), lvl.IndexBox())
	}
	s.T = T
	s.DivQ = dq
	s.step = ts
	return s, nil
}

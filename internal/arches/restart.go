package arches

import (
	"errors"
	"fmt"
	"io/fs"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/uda"
)

// Checkpoint/restart. The second purpose of Uintah's data archive is
// restarting long runs mid-flight; a restarted simulation must continue
// bit-for-bit as if it had never stopped. The solver's full state is
// the temperature field, the last radiative source, and the step
// counter (which also fixes the radiation-period phase).

// Archive labels used by checkpoints.
const (
	ckptTemp = "checkpoint_T"
	ckptDivQ = "checkpoint_divQ"
)

// Checkpoint writes the solver's state as timestep s.Step() of the
// archive.
func (s *Solver) Checkpoint(a *uda.Archive) error {
	ts := s.step
	if err := a.SaveCC(ts, ckptTemp, 0, s.T); err != nil {
		return fmt.Errorf("arches: checkpoint: %w", err)
	}
	if err := a.SaveCC(ts, ckptDivQ, 0, s.DivQ); err != nil {
		return fmt.Errorf("arches: checkpoint: %w", err)
	}
	return nil
}

// Restart builds a solver that resumes from checkpoint timestep ts of
// the archive: identical configuration and grid are the caller's
// responsibility (as with Uintah restarts).
func Restart(cfg Config, lvl *grid.Level, abskg *field.CC[float64], a *uda.Archive, ts int) (*Solver, error) {
	s, err := NewSolver(cfg, lvl, func(x, y, z float64) float64 { return 0 }, abskg)
	if err != nil {
		return nil, err
	}
	T, err := a.LoadCC(ts, ckptTemp, 0)
	if err != nil {
		return nil, fmt.Errorf("arches: restart: %w", err)
	}
	dq, err := a.LoadCC(ts, ckptDivQ, 0)
	if err != nil {
		return nil, fmt.Errorf("arches: restart: %w", err)
	}
	if T.Box() != lvl.IndexBox() || dq.Box() != lvl.IndexBox() {
		return nil, fmt.Errorf("arches: restart: checkpoint grid %v does not match level %v",
			T.Box(), lvl.IndexBox())
	}
	s.T = T
	s.DivQ = dq
	s.step = ts
	return s, nil
}

// CheckpointPolicy says when Run snapshots the solver state into the
// archive. The zero value never checkpoints.
type CheckpointPolicy struct {
	// Every checkpoints after every Every-th completed timestep (0 =
	// never). A crash then costs at most Every-1 recomputed steps plus
	// the step in flight.
	Every int
	// OnFailure additionally checkpoints the last *completed* step when
	// Advance fails (e.g. a transient sched.ErrRankLost from the
	// radiation backend), so a resume pays zero recomputation. The
	// failed step itself never modified T or the step counter, so the
	// snapshot is consistent.
	OnFailure bool
	// Keep bounds how many checkpoints are retained (0 = all); older
	// ones are pruned oldest-first after each new snapshot.
	Keep int
}

// Run advances the solver up to n steps of length dt, checkpointing into
// a per the policy (a may be nil when the policy never checkpoints). It
// returns how many steps completed. On an Advance error the solver is
// left at its last consistent state — already persisted when
// pol.OnFailure is set — and the error is returned unwrapped for
// errors.Is matching.
func (s *Solver) Run(a *uda.Archive, n int, dt float64, pol CheckpointPolicy) (int, error) {
	ckpt := func() error {
		if err := s.Checkpoint(a); err != nil {
			return err
		}
		return pruneCheckpoints(a, pol.Keep)
	}
	for i := 0; i < n; i++ {
		if err := s.Advance(dt); err != nil {
			if pol.OnFailure && a != nil {
				if cerr := ckpt(); cerr != nil {
					return i, errors.Join(err, cerr)
				}
			}
			return i, err
		}
		if a != nil && pol.Every > 0 && s.step%pol.Every == 0 {
			if err := ckpt(); err != nil {
				return i + 1, err
			}
		}
	}
	return n, nil
}

// pruneCheckpoints drops the oldest checkpoints beyond the retention
// bound.
func pruneCheckpoints(a *uda.Archive, keep int) error {
	if keep <= 0 {
		return nil
	}
	ts := a.Timesteps()
	for len(ts) > keep {
		if err := a.RemoveTimestep(ts[0]); err != nil {
			return err
		}
		ts = ts[1:]
	}
	return nil
}

// ResumeFrom reopens the checkpoint archive at dir after a crash,
// quarantines any torn timesteps (uda.OpenRepair), and restarts from the
// newest checkpoint that loads whole — falling back to older ones past
// any that are corrupt, so a crash mid-checkpoint-write never loses the
// run. It returns the resumed solver and the quarantined timesteps.
// Configuration and grid must match the original run, as with Restart.
func ResumeFrom(cfg Config, lvl *grid.Level, abskg *field.CC[float64], dir string) (*Solver, []int, error) {
	a, torn, err := uda.OpenRepair(dir)
	if err != nil {
		return nil, torn, fmt.Errorf("arches: resume: %w", err)
	}
	a.Strict = true // a NaN in a restart field would poison the whole resumed run
	tss := a.Timesteps()
	for i := len(tss) - 1; i >= 0; i-- {
		s, err := Restart(cfg, lvl, abskg, a, tss[i])
		if err == nil {
			return s, torn, nil
		}
		// Fall back past damage a crash can cause: corrupt payloads and
		// half-written checkpoints (one of the two labels missing when
		// the crash hit between the payload writes). Anything else —
		// grid mismatch, real I/O failure — is a misconfigured resume
		// that older checkpoints cannot fix.
		if !errors.Is(err, uda.ErrCorrupt) && !errors.Is(err, uda.ErrNonFinite) && !errors.Is(err, fs.ErrNotExist) {
			return nil, torn, err
		}
	}
	return nil, torn, fmt.Errorf("arches: resume: no loadable checkpoint in %s", dir)
}

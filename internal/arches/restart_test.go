package arches

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/uintah-repro/rmcrt/internal/uda"
)

// ckptConfig is the shared configuration for the checkpoint-policy
// tests: radiation on (so the period phase matters) but cheap.
func ckptConfig() Config {
	cfg := DefaultConfig()
	cfg.RadPeriod = 3
	cfg.Radiation.NRays = 8
	return cfg
}

func hotInit(x, y, z float64) float64 { return 900 + 200*x }

// TestRunCheckpointEvery: Run with Every=2 leaves checkpoints at steps
// 2, 4, ... and the final state equals step-by-step Advance.
func TestRunCheckpointEvery(t *testing.T) {
	cfg := ckptConfig()
	s := newSolver(t, cfg, 6, hotInit)
	a, err := uda.Create(t.TempDir(), "every")
	if err != nil {
		t.Fatal(err)
	}
	done, err := s.Run(a, 7, 1e-3, CheckpointPolicy{Every: 2})
	if err != nil || done != 7 {
		t.Fatalf("Run = %d, %v", done, err)
	}
	got := a.Timesteps()
	want := []int{2, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("checkpoints at %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("checkpoints at %v, want %v", got, want)
		}
	}

	ref := newSolver(t, cfg, 6, hotInit)
	for i := 0; i < 7; i++ {
		if err := ref.Advance(1e-3); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range ref.T.Data() {
		if v != s.T.Data()[i] {
			t.Fatalf("Run diverged from Advance loop at cell %d", i)
		}
	}
}

// TestRunKeepPrunes: retention bound Keep=2 holds only the newest two
// checkpoints.
func TestRunKeepPrunes(t *testing.T) {
	s := newSolver(t, ckptConfig(), 4, hotInit)
	a, err := uda.Create(t.TempDir(), "keep")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(a, 8, 1e-3, CheckpointPolicy{Every: 2, Keep: 2}); err != nil {
		t.Fatal(err)
	}
	got := a.Timesteps()
	if len(got) != 2 || got[0] != 6 || got[1] != 8 {
		t.Fatalf("retained checkpoints %v, want [6 8]", got)
	}
}

// TestResumeFromNewestBitwise: crash after step 7 with checkpoints every
// 2 resumes from step 6 and finishes bit-identical to an uninterrupted
// run — the resume recomputes exactly one step.
func TestResumeFromNewestBitwise(t *testing.T) {
	cfg := ckptConfig()
	const steps, crashAt = 12, 7
	dt := 1e-3

	ref := newSolver(t, cfg, 6, hotInit)
	for i := 0; i < steps; i++ {
		if err := ref.Advance(dt); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	victim := newSolver(t, cfg, 6, hotInit)
	a, err := uda.Create(dir, "crash")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Run(a, crashAt, dt, CheckpointPolicy{Every: 2}); err != nil {
		t.Fatal(err)
	}
	// Simulated SIGKILL: the in-memory solver is abandoned; only the
	// archive survives.
	resumed, torn, err := ResumeFrom(cfg, victim.level, victim.Abskg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(torn) != 0 {
		t.Fatalf("clean archive quarantined %v", torn)
	}
	if resumed.Step() != 6 {
		t.Fatalf("resumed from step %d, want 6", resumed.Step())
	}
	if _, err := resumed.Run(nil, steps-resumed.Step(), dt, CheckpointPolicy{}); err != nil {
		t.Fatal(err)
	}
	for i, v := range ref.T.Data() {
		if v != resumed.T.Data()[i] {
			t.Fatalf("resume diverged at cell %d: %v vs %v", i, v, resumed.T.Data()[i])
		}
	}
}

// TestResumeFromSkipsTornCheckpoint: tearing the newest checkpoint makes
// ResumeFrom quarantine it and fall back to the previous one; the run
// still finishes bit-identical.
func TestResumeFromSkipsTornCheckpoint(t *testing.T) {
	cfg := ckptConfig()
	dir := t.TempDir()
	victim := newSolver(t, cfg, 6, hotInit)
	a, err := uda.Create(dir, "torn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Run(a, 6, 1e-3, CheckpointPolicy{Every: 2}); err != nil {
		t.Fatal(err)
	}
	// Tear the newest checkpoint (t0006) mid-payload.
	p := filepath.Join(dir, "t0006", "checkpoint_T.p0.bin")
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, data[:len(data)-11], 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, torn, err := ResumeFrom(cfg, victim.level, victim.Abskg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(torn) != 1 || torn[0] != 6 {
		t.Fatalf("quarantined %v, want [6]", torn)
	}
	if resumed.Step() != 4 {
		t.Fatalf("resumed from step %d, want 4", resumed.Step())
	}

	ref := newSolver(t, cfg, 6, hotInit)
	for i := 0; i < 10; i++ {
		if err := ref.Advance(1e-3); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := resumed.Run(nil, 10-resumed.Step(), 1e-3, CheckpointPolicy{}); err != nil {
		t.Fatal(err)
	}
	for i, v := range ref.T.Data() {
		if v != resumed.T.Data()[i] {
			t.Fatalf("resume-after-quarantine diverged at cell %d", i)
		}
	}
}

// TestResumeFromHalfWrittenCheckpoint: a crash between the two payload
// writes of one checkpoint (divQ missing) falls back to the previous
// checkpoint instead of failing.
func TestResumeFromHalfWrittenCheckpoint(t *testing.T) {
	cfg := ckptConfig()
	dir := t.TempDir()
	victim := newSolver(t, cfg, 6, hotInit)
	a, err := uda.Create(dir, "half")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Run(a, 6, 1e-3, CheckpointPolicy{Every: 2}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "t0006", "checkpoint_divQ.p0.bin")); err != nil {
		t.Fatal(err)
	}
	resumed, _, err := ResumeFrom(cfg, victim.level, victim.Abskg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Step() != 4 {
		t.Fatalf("resumed from step %d, want 4", resumed.Step())
	}
}

// TestResumeFromRejectsNonFinite: a checkpoint whose bytes are intact
// but whose values are NaN is rejected by the strict resume reader and
// skipped.
func TestResumeFromRejectsNonFinite(t *testing.T) {
	cfg := ckptConfig()
	dir := t.TempDir()
	victim := newSolver(t, cfg, 6, hotInit)
	a, err := uda.Create(dir, "nan")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := victim.Run(a, 4, 1e-3, CheckpointPolicy{Every: 2}); err != nil {
		t.Fatal(err)
	}
	// Overwrite the newest T checkpoint with a NaN-poisoned field,
	// through the archive so the CRC is valid.
	bad := newSolver(t, cfg, 6, func(x, y, z float64) float64 { return math.NaN() })
	if err := a.SaveCC(4, "checkpoint_T", 0, bad.T); err != nil {
		t.Fatal(err)
	}
	resumed, _, err := ResumeFrom(cfg, victim.level, victim.Abskg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Step() != 2 {
		t.Fatalf("resumed from step %d, want 2 (NaN checkpoint skipped)", resumed.Step())
	}
}

// TestResumeFromEmptyArchiveFails: no checkpoints means no resume.
func TestResumeFromEmptyArchiveFails(t *testing.T) {
	cfg := ckptConfig()
	dir := t.TempDir()
	s := newSolver(t, cfg, 6, hotInit)
	if _, err := uda.Create(dir, "empty"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ResumeFrom(cfg, s.level, s.Abskg, dir); err == nil {
		t.Error("resume from an empty archive should fail")
	}
}

package arches

import (
	"math"
	"testing"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/mathutil"
	"github.com/uintah-repro/rmcrt/internal/uda"
)

func testLevel(t testing.TB, n int) *grid.Level {
	t.Helper()
	g, err := grid.New(mathutil.V3(0, 0, 0), mathutil.V3(1, 1, 1),
		grid.Spec{Resolution: grid.Uniform(n), PatchSize: grid.Uniform(n)})
	if err != nil {
		t.Fatal(err)
	}
	return g.Levels[0]
}

func newSolver(t testing.TB, cfg Config, n int, initT func(x, y, z float64) float64) *Solver {
	t.Helper()
	lvl := testLevel(t, n)
	abskg := field.NewCC[float64](lvl.IndexBox())
	abskg.Fill(0.5)
	s, err := NewSolver(cfg, lvl, initT, abskg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestUniformEquilibriumStaysPut(t *testing.T) {
	// T == wall temperature, no sources: nothing changes, exactly.
	cfg := DefaultConfig()
	cfg.RadPeriod = 0
	cfg.WallTemp = 400
	s := newSolver(t, cfg, 6, func(x, y, z float64) float64 { return 400 })
	dt := s.StableDt()
	for i := 0; i < 10; i++ {
		if err := s.Advance(dt); err != nil {
			t.Fatal(err)
		}
	}
	lo, hi := s.Bounds()
	if math.Abs(lo-400) > 1e-10 || math.Abs(hi-400) > 1e-10 {
		t.Errorf("equilibrium drifted: [%v, %v]", lo, hi)
	}
}

func TestConductionCoolsTowardWalls(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RadPeriod = 0
	cfg.WallTemp = 300
	s := newSolver(t, cfg, 8, func(x, y, z float64) float64 { return 1000 })
	dt := s.StableDt()
	prev := s.MeanTemp()
	for i := 0; i < 50; i++ {
		if err := s.Advance(dt); err != nil {
			t.Fatal(err)
		}
		m := s.MeanTemp()
		if m > prev+1e-12 {
			t.Fatalf("step %d: mean temperature rose from %v to %v", i, prev, m)
		}
		prev = m
	}
	if prev >= 1000 {
		t.Error("no cooling happened")
	}
	lo, hi := s.Bounds()
	// Max principle: temperatures stay within [wall, initial max].
	if lo < 300-1e-9 || hi > 1000+1e-9 {
		t.Errorf("max principle violated: [%v, %v]", lo, hi)
	}
}

func TestHeatSourceWarms(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RadPeriod = 0
	cfg.HeatSource = 1e5
	cfg.WallTemp = 300
	s := newSolver(t, cfg, 6, func(x, y, z float64) float64 { return 300 })
	dt := s.StableDt()
	for i := 0; i < 20; i++ {
		if err := s.Advance(dt); err != nil {
			t.Fatal(err)
		}
	}
	if s.MeanTemp() <= 300 {
		t.Errorf("mean temp = %v, heat source had no effect", s.MeanTemp())
	}
}

func TestRadiationCoolsHotGas(t *testing.T) {
	// Hot medium, cold walls, conduction off: radiation is the only
	// mechanism and must cool the gas monotonically.
	cfg := DefaultConfig()
	cfg.Conductivity = 0
	cfg.RadPeriod = 2
	cfg.WallTemp = 300
	cfg.Radiation.NRays = 16
	s := newSolver(t, cfg, 6, func(x, y, z float64) float64 { return 1500 })
	dt := 1e-3
	prev := s.MeanTemp()
	for i := 0; i < 10; i++ {
		if err := s.Advance(dt); err != nil {
			t.Fatal(err)
		}
		m := s.MeanTemp()
		if m >= prev {
			t.Fatalf("step %d: radiation did not cool (%v -> %v)", i, prev, m)
		}
		prev = m
	}
	if s.RadSolves != 5 {
		t.Errorf("RadSolves = %d, want 5 (period 2 over 10 steps)", s.RadSolves)
	}
}

func TestRadiationCouplingPeriod(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RadPeriod = 5
	cfg.Radiation.NRays = 4
	s := newSolver(t, cfg, 4, func(x, y, z float64) float64 { return 800 })
	dt := s.StableDt()
	for i := 0; i < 10; i++ {
		if err := s.Advance(dt); err != nil {
			t.Fatal(err)
		}
	}
	if s.RadSolves != 2 {
		t.Errorf("RadSolves = %d, want 2", s.RadSolves)
	}
	if s.Step() != 10 {
		t.Errorf("Step = %d", s.Step())
	}
}

// TestRKOrders verifies the SSP integrators hit their design order on
// dy/dt = -y: global error at t=1 should shrink ~2^p when dt halves.
func TestRKOrders(t *testing.T) {
	for _, tc := range []struct {
		order   int
		wantMin float64 // min acceptable observed order
	}{
		{1, 0.8},
		{2, 1.8},
		{3, 2.7},
	} {
		errAt := func(steps int) float64 {
			y := []float64{1}
			dt := 1.0 / float64(steps)
			rhs := func(out, in []float64) { out[0] = -in[0] }
			for i := 0; i < steps; i++ {
				StepRK(tc.order, y, dt, rhs)
			}
			return math.Abs(y[0] - math.Exp(-1))
		}
		e1, e2 := errAt(64), errAt(128)
		order := math.Log2(e1 / e2)
		if order < tc.wantMin {
			t.Errorf("RK%d observed order %.2f, want >= %.2f (errors %g, %g)",
				tc.order, order, tc.wantMin, e1, e2)
		}
	}
}

func TestStepRKUnknownOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("StepRK(4) should panic")
		}
	}()
	StepRK(4, []float64{1}, 0.1, func(out, in []float64) { out[0] = 0 })
}

func TestNewSolverValidation(t *testing.T) {
	lvl := testLevel(t, 4)
	abskg := field.NewCC[float64](lvl.IndexBox())
	bad := DefaultConfig()
	bad.Rho = 0
	if _, err := NewSolver(bad, lvl, func(x, y, z float64) float64 { return 1 }, abskg); err == nil {
		t.Error("rho=0 accepted")
	}
	bad = DefaultConfig()
	bad.RKOrder = 7
	if _, err := NewSolver(bad, lvl, func(x, y, z float64) float64 { return 1 }, abskg); err == nil {
		t.Error("RKOrder=7 accepted")
	}
}

func TestStableDt(t *testing.T) {
	cfg := DefaultConfig()
	s := newSolver(t, cfg, 10, func(x, y, z float64) float64 { return 300 })
	dt := s.StableDt()
	alpha := cfg.Conductivity / (cfg.Rho * cfg.Cv)
	want := 0.9 * 0.1 * 0.1 / (6 * alpha) // dx = 1/10
	if math.Abs(dt-want)/want > 1e-12 {
		t.Errorf("StableDt = %v, want %v", dt, want)
	}
	cfg.Conductivity = 0
	s2 := newSolver(t, cfg, 10, func(x, y, z float64) float64 { return 300 })
	if !math.IsInf(s2.StableDt(), 1) {
		t.Error("zero conductivity should have no diffusion limit")
	}
}

// TestCheckpointRestartBitwise: 20 straight steps must equal 10 steps +
// checkpoint + restart + 10 steps, bit for bit — including the
// radiation-period phase carried by the step counter.
func TestCheckpointRestartBitwise(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RadPeriod = 3
	cfg.Radiation.NRays = 8
	mk := func() *Solver { return newSolver(t, cfg, 8, func(x, y, z float64) float64 { return 900 + 200*x }) }

	straight := mk()
	dt := 1e-3
	for i := 0; i < 20; i++ {
		if err := straight.Advance(dt); err != nil {
			t.Fatal(err)
		}
	}

	half := mk()
	for i := 0; i < 10; i++ {
		if err := half.Advance(dt); err != nil {
			t.Fatal(err)
		}
	}
	arch, err := uda.Create(t.TempDir(), "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if err := half.Checkpoint(arch); err != nil {
		t.Fatal(err)
	}
	resumed, err := Restart(cfg, half.level, half.Abskg, arch, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := resumed.Advance(dt); err != nil {
			t.Fatal(err)
		}
	}
	if resumed.Step() != 20 || straight.Step() != 20 {
		t.Fatalf("steps %d vs %d", resumed.Step(), straight.Step())
	}
	a, b := straight.T.Data(), resumed.T.Data()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restart diverged at cell %d: %v vs %v", i, a[i], b[i])
		}
	}
	if straight.RadSolves == 0 {
		t.Error("radiation never ran in the reference run")
	}
}

// TestRestartRejectsWrongGrid: restarting on a mismatched grid is a
// user error caught explicitly.
func TestRestartRejectsWrongGrid(t *testing.T) {
	cfg := DefaultConfig()
	s := newSolver(t, cfg, 8, func(x, y, z float64) float64 { return 300 })
	arch, err := uda.Create(t.TempDir(), "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(arch); err != nil {
		t.Fatal(err)
	}
	other := testLevel(t, 12)
	abskg := field.NewCC[float64](other.IndexBox())
	if _, err := Restart(cfg, other, abskg, arch, 0); err == nil {
		t.Error("restart onto a different grid must fail")
	}
}

// Package arches is a miniature of the ARCHES combustion component —
// just enough of it to exercise the coupling the paper describes: an
// explicit finite-volume energy equation whose radiative source term
// −∇·q_r is computed by the RMCRT radiation model on its own schedule
// ("thermal radiation in the target boiler simulations is loosely
// coupled to the CFD due to time-scale separation").
//
// The transported equation is
//
//	ρ c_v ∂T/∂t = ∇·(k ∇T) − ∇·q_r + Q'''
//
// discretized with central differences for conduction and integrated
// with the strong-stability-preserving RK2/RK3 schemes of Gottlieb &
// Shu [22], the integrators the real ARCHES uses.
package arches

import (
	"fmt"
	"math"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/rmcrt"
)

// Config sets the physical and numerical parameters of a solver.
type Config struct {
	// Rho is the density ρ (kg/m³).
	Rho float64
	// Cv is the specific heat c_v (J/(kg·K)).
	Cv float64
	// Conductivity is the thermal conductivity k (W/(m·K)).
	Conductivity float64
	// WallTemp is the fixed (Dirichlet) wall temperature (K).
	WallTemp float64
	// HeatSource is the volumetric source Q''' (W/m³), e.g. reaction heat.
	HeatSource float64
	// RKOrder selects the SSP Runge–Kutta order: 1 (forward Euler,
	// testing only), 2 or 3.
	RKOrder int
	// RadPeriod computes the radiation source every RadPeriod timesteps
	// (0 disables radiation). Time-scale separation makes this valid.
	RadPeriod int
	// Radiation configures the RMCRT solve used for −∇·q_r.
	Radiation rmcrt.Options
}

// DefaultConfig returns parameters representative of hot furnace gas.
func DefaultConfig() Config {
	r := rmcrt.DefaultOptions()
	r.NRays = 32
	return Config{
		Rho:          0.5,
		Cv:           1200,
		Conductivity: 0.1,
		WallTemp:     300,
		RKOrder:      2,
		RadPeriod:    5,
		Radiation:    r,
	}
}

// Solver integrates the energy equation on one uniform level.
type Solver struct {
	cfg   Config
	level *grid.Level
	// T is the temperature field over the level.
	T *field.CC[float64]
	// Abskg is the absorption coefficient field (radiation property).
	Abskg *field.CC[float64]
	// DivQ is the most recent radiative source (W/m³), zero before the
	// first radiation solve.
	DivQ *field.CC[float64]

	step int
	// RadSolves counts radiation solves performed.
	RadSolves int
}

// NewSolver builds a solver over lvl with initial temperature initT
// evaluated at cell centers.
func NewSolver(cfg Config, lvl *grid.Level, initT func(x, y, z float64) float64, abskg *field.CC[float64]) (*Solver, error) {
	if cfg.Rho <= 0 || cfg.Cv <= 0 {
		return nil, fmt.Errorf("arches: non-physical rho/cv")
	}
	if cfg.RKOrder < 1 || cfg.RKOrder > 3 {
		return nil, fmt.Errorf("arches: RKOrder must be 1, 2 or 3")
	}
	s := &Solver{
		cfg:   cfg,
		level: lvl,
		T:     field.NewCC[float64](lvl.IndexBox()),
		Abskg: abskg,
		DivQ:  field.NewCC[float64](lvl.IndexBox()),
	}
	s.T.FillFunc(func(c grid.IntVector) float64 {
		p := lvl.CellCenter(c)
		return initT(p.X, p.Y, p.Z)
	})
	return s, nil
}

// StableDt returns the explicit diffusion stability limit dx²/(6α) with
// a 0.9 safety factor, α = k/(ρ c_v).
func (s *Solver) StableDt() float64 {
	alpha := s.cfg.Conductivity / (s.cfg.Rho * s.cfg.Cv)
	if alpha == 0 {
		return math.Inf(1)
	}
	dx := s.level.CellSize().MinComponent()
	return 0.9 * dx * dx / (6 * alpha)
}

// rhs evaluates dT/dt = (k ∇²T − ∇·q_r + Q”')/(ρ c_v) into out.
func (s *Solver) rhs(out, in []float64) {
	box := s.level.IndexBox()
	tmp := field.NewCCFrom(box, in)
	o := field.NewCCFrom(box, out)
	dx := s.level.CellSize()
	invRC := 1 / (s.cfg.Rho * s.cfg.Cv)
	k := s.cfg.Conductivity

	box.ForEach(func(c grid.IntVector) {
		lap := 0.0
		for ax := 0; ax < 3; ax++ {
			h := dx.Component(ax)
			up := c.WithComponent(ax, c.Component(ax)+1)
			dn := c.WithComponent(ax, c.Component(ax)-1)
			tu, td := s.cfg.WallTemp, s.cfg.WallTemp
			if box.Contains(up) {
				tu = tmp.At(up)
			}
			if box.Contains(dn) {
				td = tmp.At(dn)
			}
			lap += (tu - 2*tmp.At(c) + td) / (h * h)
		}
		o.Set(c, invRC*(k*lap-s.DivQ.At(c)+s.cfg.HeatSource))
	})
}

// StepRK advances data by dt with the SSP-RK scheme of the given order,
// using rhs(out, in) to evaluate the time derivative. Exported for the
// integrator-order tests.
func StepRK(order int, data []float64, dt float64, rhs func(out, in []float64)) {
	n := len(data)
	k := make([]float64, n)
	u1 := make([]float64, n)
	euler := func(dst, src []float64) {
		rhs(k, src)
		for i := range dst {
			dst[i] = src[i] + dt*k[i]
		}
	}
	switch order {
	case 1:
		euler(data, data)
	case 2:
		// u1 = u + dt L(u); u = ½u + ½(u1 + dt L(u1))
		euler(u1, data)
		rhs(k, u1)
		for i := range data {
			data[i] = 0.5*data[i] + 0.5*(u1[i]+dt*k[i])
		}
	case 3:
		// Gottlieb–Shu SSP-RK3.
		u2 := make([]float64, n)
		euler(u1, data)
		rhs(k, u1)
		for i := range u2 {
			u2[i] = 0.75*data[i] + 0.25*(u1[i]+dt*k[i])
		}
		rhs(k, u2)
		for i := range data {
			data[i] = data[i]/3 + 2.0/3.0*(u2[i]+dt*k[i])
		}
	default:
		panic(fmt.Sprintf("arches: unsupported RK order %d", order))
	}
}

// Advance integrates one timestep of length dt, refreshing the
// radiation source first when the coupling period comes due.
func (s *Solver) Advance(dt float64) error {
	if s.cfg.RadPeriod > 0 && s.step%s.cfg.RadPeriod == 0 {
		if err := s.solveRadiation(); err != nil {
			return err
		}
	}
	StepRK(s.cfg.RKOrder, s.T.Data(), dt, s.rhs)
	s.step++
	return nil
}

// solveRadiation recomputes σT⁴/π from the current temperature field
// and runs the single-level RMCRT solve for ∇·q_r — the exact feedback
// loop of equation (1) in the paper.
func (s *Solver) solveRadiation() error {
	box := s.level.IndexBox()
	sig := field.NewCC[float64](box)
	tv := s.T
	sig.FillFunc(func(c grid.IntVector) float64 {
		T := tv.At(c)
		return rmcrt.SigmaSB * T * T * T * T / math.Pi
	})
	ct := field.NewCC[field.CellType](box)
	ct.Fill(field.Flow)
	d := &rmcrt.Domain{Levels: []rmcrt.LevelData{{
		Level: s.level, ROI: box,
		Abskg: s.Abskg, SigmaT4OverPi: sig, CellType: ct,
	}}}
	opts := s.cfg.Radiation
	opts.WallSigmaT4 = rmcrt.SigmaSB * math.Pow(s.cfg.WallTemp, 4)
	dq, err := d.SolveRegion(box, &opts)
	if err != nil {
		return fmt.Errorf("arches: radiation solve: %w", err)
	}
	s.DivQ = dq
	s.RadSolves++
	return nil
}

// MeanTemp returns the volume-averaged temperature.
func (s *Solver) MeanTemp() float64 {
	sum := 0.0
	for _, t := range s.T.Data() {
		sum += t
	}
	return sum / float64(len(s.T.Data()))
}

// Bounds returns the min and max cell temperature.
func (s *Solver) Bounds() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, t := range s.T.Data() {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return lo, hi
}

// Step returns the number of completed timesteps.
func (s *Solver) Step() int { return s.step }

package arches

import (
	"math"
	"testing"

	"github.com/uintah-repro/rmcrt/internal/dw"
	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/mathutil"
	"github.com/uintah-repro/rmcrt/internal/sched"
	"github.com/uintah-repro/rmcrt/internal/simmpi"
)

// runGraphSteps advances the task-graph form over steps timesteps on a
// patch-decomposed level and returns the final temperature field.
func runGraphSteps(t *testing.T, cfg Config, n, patchN, steps int, dt float64,
	initT func(x, y, z float64) float64) *field.CC[float64] {
	t.Helper()
	g, err := grid.New(mathutil.V3(0, 0, 0), mathutil.V3(1, 1, 1),
		grid.Spec{Resolution: grid.Uniform(n), PatchSize: grid.Uniform(patchN)})
	if err != nil {
		t.Fatal(err)
	}
	lvl := g.Levels[0]

	old := dw.New(0)
	for _, p := range lvl.Patches {
		v := field.NewCC[float64](p.Cells)
		v.FillFunc(func(c grid.IntVector) float64 {
			pt := lvl.CellCenter(c)
			return initT(pt.X, pt.Y, pt.Z)
		})
		old.PutCC(LabelT, p.ID, v)
	}
	comm := simmpi.NewComm(1)
	for step := 0; step < steps; step++ {
		newDW := dw.New(step + 1)
		s := sched.NewScheduler(0, 4, g, newDW, old, comm)
		tg := &TimestepGraph{Cfg: cfg, Grid: g, Level: 0, Dt: dt}
		if err := tg.Register(s); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Execute(); err != nil {
			t.Fatal(err)
		}
		old = newDW
	}
	out := field.NewCC[float64](lvl.IndexBox())
	for _, p := range lvl.Patches {
		v, err := old.GetCC(LabelT, p.ID)
		if err != nil {
			t.Fatal(err)
		}
		out.CopyRegion(v, p.Cells)
	}
	return out
}

// runMonolithicSteps advances the single-patch Solver identically.
func runMonolithicSteps(t *testing.T, cfg Config, n, steps int, dt float64,
	initT func(x, y, z float64) float64) *field.CC[float64] {
	t.Helper()
	g, err := grid.New(mathutil.V3(0, 0, 0), mathutil.V3(1, 1, 1),
		grid.Spec{Resolution: grid.Uniform(n), PatchSize: grid.Uniform(n)})
	if err != nil {
		t.Fatal(err)
	}
	abskg := field.NewCC[float64](g.Levels[0].IndexBox())
	s, err := NewSolver(cfg, g.Levels[0], initT, abskg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		if err := s.Advance(dt); err != nil {
			t.Fatal(err)
		}
	}
	return s.T
}

func hotBlobInit(x, y, z float64) float64 {
	dx, dy, dz := x-0.5, y-0.5, z-0.5
	return 300 + 900*math.Exp(-12*(dx*dx+dy*dy+dz*dz))
}

// TestTaskGraphMatchesMonolithicRK1: patch decomposition must not
// change the arithmetic — Euler over 8 patches with halo exchange
// equals Euler over one big patch, bitwise.
func TestTaskGraphMatchesMonolithicRK1(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RKOrder = 1
	cfg.RadPeriod = 0
	const n, steps = 12, 8
	dt := 0.5

	graph := runGraphSteps(t, cfg, n, 4, steps, dt, hotBlobInit)
	mono := runMonolithicSteps(t, cfg, n, steps, dt, hotBlobInit)

	graph.Box().ForEach(func(c grid.IntVector) {
		if graph.At(c) != mono.At(c) {
			t.Fatalf("cell %v: graph %v != monolithic %v", c, graph.At(c), mono.At(c))
		}
	})
}

// TestTaskGraphMatchesMonolithicRK2: the two-phase SSP-RK2 graph (with
// the intermediate-stage ghost exchange) reproduces the monolithic
// integrator to round-off.
func TestTaskGraphMatchesMonolithicRK2(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RKOrder = 2
	cfg.RadPeriod = 0
	cfg.HeatSource = 5e3
	const n, steps = 12, 6
	dt := 0.4

	graph := runGraphSteps(t, cfg, n, 6, steps, dt, hotBlobInit)
	mono := runMonolithicSteps(t, cfg, n, steps, dt, hotBlobInit)

	var worst float64
	graph.Box().ForEach(func(c grid.IntVector) {
		rel := mathutil.RelErr(graph.At(c), mono.At(c), 1e-12)
		if rel > worst {
			worst = rel
		}
	})
	if worst > 1e-12 {
		t.Errorf("worst relative difference %g, want round-off", worst)
	}
}

// TestTaskGraphDecompositionInvariance: 2³ patches and 3³ patches give
// identical fields.
func TestTaskGraphDecompositionInvariance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RKOrder = 2
	cfg.RadPeriod = 0
	const n, steps = 12, 4
	dt := 0.3
	a := runGraphSteps(t, cfg, n, 6, steps, dt, hotBlobInit)
	b := runGraphSteps(t, cfg, n, 4, steps, dt, hotBlobInit)
	a.Box().ForEach(func(c grid.IntVector) {
		if a.At(c) != b.At(c) {
			t.Fatalf("cell %v differs across decompositions", c)
		}
	})
}

// TestTaskGraphWithRadiationSource: a supplied divQ cools the gas.
func TestTaskGraphWithRadiationSource(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RKOrder = 2
	cfg.RadPeriod = 0
	cfg.Conductivity = 0
	const n = 8
	g, err := grid.New(mathutil.V3(0, 0, 0), mathutil.V3(1, 1, 1),
		grid.Spec{Resolution: grid.Uniform(n), PatchSize: grid.Uniform(4)})
	if err != nil {
		t.Fatal(err)
	}
	lvl := g.Levels[0]
	old := dw.New(0)
	for _, p := range lvl.Patches {
		v := field.NewCC[float64](p.Cells)
		v.Fill(1000)
		old.PutCC(LabelT, p.ID, v)
	}
	newDW := dw.New(1)
	s := sched.NewScheduler(0, 4, g, newDW, old, simmpi.NewComm(1))
	tg := &TimestepGraph{
		Cfg: cfg, Grid: g, Level: 0, Dt: 1e-3,
		DivQ: func(p *grid.Patch) *field.CC[float64] {
			v := field.NewCC[float64](p.Cells)
			v.Fill(1e5) // net emission everywhere
			return v
		},
	}
	if err := tg.Register(s); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(); err != nil {
		t.Fatal(err)
	}
	for _, p := range lvl.Patches {
		v, err := newDW.GetCC(LabelT, p.ID)
		if err != nil {
			t.Fatal(err)
		}
		p.Cells.ForEach(func(c grid.IntVector) {
			if v.At(c) >= 1000 {
				t.Fatalf("radiative cooling had no effect at %v: %v", c, v.At(c))
			}
		})
	}
}

func TestTimestepGraphValidation(t *testing.T) {
	s := sched.NewScheduler(0, 1, nil, dw.New(1), dw.New(0), simmpi.NewComm(1))
	if err := (&TimestepGraph{}).Register(s); err == nil {
		t.Error("empty graph accepted")
	}
	g, _ := grid.New(mathutil.V3(0, 0, 0), mathutil.V3(1, 1, 1),
		grid.Spec{Resolution: grid.Uniform(4), PatchSize: grid.Uniform(4)})
	cfg := DefaultConfig()
	cfg.RKOrder = 3
	if err := (&TimestepGraph{Cfg: cfg, Grid: g, Dt: 1}).Register(s); err == nil {
		t.Error("RK3 graph should be rejected (not implemented)")
	}
	cfg.RKOrder = 2
	if err := (&TimestepGraph{Cfg: cfg, Grid: g, Dt: 0}).Register(s); err == nil {
		t.Error("zero dt accepted")
	}
}

package gpu

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestAllocAccounting(t *testing.T) {
	d := NewDevice(1000, CostModel{})
	b1, err := d.Alloc(400)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := d.Alloc(500)
	if err != nil {
		t.Fatal(err)
	}
	if d.Used() != 900 {
		t.Errorf("Used = %d", d.Used())
	}
	d.Free(b1)
	if d.Used() != 500 {
		t.Errorf("Used after free = %d", d.Used())
	}
	if d.PeakUsed() != 900 {
		t.Errorf("PeakUsed = %d", d.PeakUsed())
	}
	d.Free(b2)
	if d.Capacity() != 1000 {
		t.Errorf("Capacity = %d", d.Capacity())
	}
}

func TestAllocOutOfMemory(t *testing.T) {
	// The 6 GB wall: allocations beyond capacity must fail, not mask.
	d := NewDevice(100, CostModel{})
	if _, err := d.Alloc(60); err != nil {
		t.Fatal(err)
	}
	_, err := d.Alloc(50)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	d := NewDevice(100, CostModel{})
	b, _ := d.Alloc(10)
	d.Free(b)
	defer func() {
		if recover() == nil {
			t.Error("double free should panic")
		}
	}()
	d.Free(b)
}

func TestFreeNilIsNoop(t *testing.T) {
	d := NewDevice(100, CostModel{})
	d.Free(nil)
}

func TestBufferDataSized(t *testing.T) {
	d := NewDevice(1000, CostModel{})
	b, _ := d.Alloc(17) // odd size rounds up to 3 float64s
	if len(b.Data) != 3 {
		t.Errorf("Data len = %d", len(b.Data))
	}
	if b.Size() != 17 {
		t.Errorf("Size = %d", b.Size())
	}
}

func TestStreamSerializesItsOps(t *testing.T) {
	m := CostModel{PCIeBandwidth: 1e9, PCIeLatency: 1e-6, KernelLaunch: 1e-6, Throughput: 1e9}
	d := NewDevice(1<<30, m)
	s := d.NewStream()
	t1 := s.H2D(1e6, "in")           // 1e-6 + 1e-3
	t2 := s.Launch(1e6, "kern", nil) // starts after t1
	t3 := s.D2H(1e6, "out")          // starts after t2
	if !(t1 < t2 && t2 < t3) {
		t.Errorf("stream ops not serialized: %v %v %v", t1, t2, t3)
	}
	if s.ReadyAt() != t3 {
		t.Errorf("ReadyAt = %v, want %v", s.ReadyAt(), t3)
	}
}

func TestCopyEnginesOverlapAcrossStreams(t *testing.T) {
	// Two streams transferring simultaneously use both copy engines: the
	// makespan is ~one transfer, not two.
	m := CostModel{PCIeBandwidth: 1e9}
	d := NewDevice(1<<30, m)
	s1, s2 := d.NewStream(), d.NewStream()
	e1 := s1.H2D(1e6, "a")
	e2 := s2.H2D(1e6, "b")
	single := 1e6 / 1e9
	if math.Abs(e1-single) > 1e-9 || math.Abs(e2-single) > 1e-9 {
		t.Errorf("transfers did not overlap: %v %v, want %v", e1, e2, single)
	}
	// A third transfer must queue behind one of the engines.
	s3 := d.NewStream()
	e3 := s3.H2D(1e6, "c")
	if math.Abs(e3-2*single) > 1e-9 {
		t.Errorf("third transfer = %v, want %v", e3, 2*single)
	}
}

func TestKernelsSerializeButOverlapCopies(t *testing.T) {
	m := CostModel{PCIeBandwidth: 1e9, Throughput: 1e9}
	d := NewDevice(1<<30, m)
	s1, s2 := d.NewStream(), d.NewStream()
	k1 := s1.Launch(1e6, "k1", nil)
	k2 := s2.Launch(1e6, "k2", nil) // compute serializes
	if k2 <= k1 {
		t.Errorf("kernels overlapped on compute: %v %v", k1, k2)
	}
	// But a copy on stream 3 runs during the kernels.
	s3 := d.NewStream()
	c := s3.H2D(1e6, "c")
	if c > k1+1e-9 {
		t.Errorf("copy did not overlap compute: copy end %v, k1 end %v", c, k1)
	}
}

func TestLaunchRunsBody(t *testing.T) {
	d := NewDevice(1<<20, CostModel{})
	s := d.NewStream()
	ran := false
	s.Launch(1, "body", func() { ran = true })
	if !ran {
		t.Error("kernel body did not execute")
	}
}

func TestMakespanAndReset(t *testing.T) {
	m := CostModel{PCIeBandwidth: 1e9, Throughput: 1e9}
	d := NewDevice(1<<30, m)
	s := d.NewStream()
	s.H2D(1e6, "in")
	s.Launch(5e6, "k", nil)
	if d.Makespan() <= 0 {
		t.Error("Makespan should be positive")
	}
	d.ResetTimeline()
	if d.Makespan() != 0 {
		t.Errorf("Makespan after reset = %v", d.Makespan())
	}
}

func TestEventRecording(t *testing.T) {
	d := NewDevice(1<<30, NewK20X(1e9))
	d.SetRecording(true)
	s := d.NewStream()
	s.H2D(100, "in")
	s.Launch(50, "kern", nil)
	s.D2H(100, "out")
	evs := d.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d", len(evs))
	}
	wantKinds := []EventKind{EventH2D, EventKernel, EventD2H}
	for i, e := range evs {
		if e.Kind != wantKinds[i] {
			t.Errorf("event %d kind = %v, want %v", i, e.Kind, wantKinds[i])
		}
		if e.End < e.Start {
			t.Errorf("event %d ends before it starts", i)
		}
	}
	if EventH2D.String() != "h2d" || EventD2H.String() != "d2h" || EventKernel.String() != "kernel" {
		t.Error("EventKind strings wrong")
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	d := NewDevice(1<<20, CostModel{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b, err := d.Alloc(256)
				if err != nil {
					continue // transient exhaustion is fine
				}
				d.Free(b)
			}
		}()
	}
	wg.Wait()
	if d.Used() != 0 {
		t.Errorf("Used = %d after balanced alloc/free", d.Used())
	}
}

func TestConcurrentStreams(t *testing.T) {
	d := NewDevice(1<<30, NewK20X(1e9))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := d.NewStream()
			for i := 0; i < 100; i++ {
				s.H2D(1000, "x")
				s.Launch(100, "k", nil)
				s.D2H(1000, "y")
			}
		}()
	}
	wg.Wait()
	if d.Makespan() <= 0 {
		t.Error("no simulated time elapsed")
	}
}

func TestNewK20XParameters(t *testing.T) {
	m := NewK20X(5e8)
	if m.PCIeBandwidth != 6e9 || m.Throughput != 5e8 {
		t.Errorf("K20X model = %+v", m)
	}
	if K20XMemory != 6<<30 {
		t.Errorf("K20XMemory = %d", int64(K20XMemory))
	}
}

func TestNegativeAllocFails(t *testing.T) {
	d := NewDevice(100, CostModel{})
	if _, err := d.Alloc(-1); err == nil {
		t.Error("negative alloc should fail")
	}
}

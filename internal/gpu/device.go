// Package gpu simulates the accelerator found on each Titan node: an
// NVIDIA K20X-class device with capacity-limited global memory, two DMA
// copy engines, streams, and support for concurrent kernels.
//
// The Go ecosystem has no CUDA; this package is the substitution. It
// enforces the two device properties the paper's GPU DataWarehouse work
// is about:
//
//  1. Capacity: 6 GB of global memory vs 32 GB host-side. Allocations
//     beyond capacity fail with ErrOutOfMemory — replicating the coarse
//     radiation mesh per patch simply does not fit, which is what forced
//     the shared per-level database.
//  2. Concurrency: operations issued on different streams overlap; the
//     two copy engines allow simultaneous host-to-device and
//     device-to-host transfers while kernels execute ("data for these
//     GPU tasks can be simultaneously copied to-and-from the device as
//     multiple RMCRT kernels run simultaneously").
//
// Time is simulated: every operation advances per-resource clocks using
// a cost model with the published K20X/PCIe parameters, while kernel
// bodies (plain Go functions) really execute so results are real. The
// simulated makespan is what the scaling studies consume.
package gpu

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrOutOfMemory is returned by Alloc when the device's global memory is
// exhausted — the K20X 6 GB wall the paper ran into.
var ErrOutOfMemory = errors.New("gpu: device global memory exhausted")

// CostModel prices simulated operations. Zero fields mean "free", which
// is occasionally useful in tests; NewK20X returns Titan's parameters.
type CostModel struct {
	// PCIeBandwidth is the sustained host<->device bandwidth in bytes/s.
	PCIeBandwidth float64
	// PCIeLatency is the fixed per-transfer setup cost in seconds.
	PCIeLatency float64
	// KernelLaunch is the fixed per-kernel launch overhead in seconds.
	KernelLaunch float64
	// Throughput is the device compute rate in "work units"/s; kernel
	// costs are given in work units (the RMCRT cost model uses
	// cell-steps of ray marching as the unit).
	Throughput float64
}

// K20XMemory is the usable global memory of a Tesla K20X in bytes (6 GB
// GDDR5 per the paper).
const K20XMemory = 6 << 30

// NewK20X returns the cost model used throughout the reproduction:
// PCIe 2.0 x16 effective bandwidth ~6 GB/s, ~10 µs transfer setup,
// ~5 µs kernel launch, and a calibratable compute throughput.
func NewK20X(throughput float64) CostModel {
	return CostModel{
		PCIeBandwidth: 6e9,
		PCIeLatency:   10e-6,
		KernelLaunch:  5e-6,
		Throughput:    throughput,
	}
}

// EventKind labels entries of the device timeline.
type EventKind int8

// Timeline event kinds.
const (
	EventH2D EventKind = iota
	EventD2H
	EventKernel
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventH2D:
		return "h2d"
	case EventD2H:
		return "d2h"
	case EventKernel:
		return "kernel"
	default:
		return fmt.Sprintf("event(%d)", int8(k))
	}
}

// Event is one completed operation on the simulated timeline.
type Event struct {
	Kind       EventKind
	Stream     int
	Start, End float64
	Bytes      int64
	Label      string
}

// Device is one simulated GPU. All methods are safe for concurrent use;
// Uintah issues work from many scheduler threads at once.
type Device struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	peakUsed int64
	model    CostModel

	copyEngines []float64 // availableAt per DMA engine
	compute     float64   // availableAt of the SM array (kernels serialize, copies overlap)
	nextStream  int

	events []Event
	record bool
}

// NewDevice creates a device with the given memory capacity (bytes) and
// cost model. Two copy engines, as on the K20X.
func NewDevice(capacity int64, model CostModel) *Device {
	return &Device{
		capacity:    capacity,
		model:       model,
		copyEngines: make([]float64, 2),
	}
}

// SetRecording enables (or disables) the event timeline, which tests and
// the gpuscheduler example inspect.
func (d *Device) SetRecording(on bool) {
	d.mu.Lock()
	d.record = on
	d.mu.Unlock()
}

// Events returns a copy of the recorded timeline sorted by start time.
func (d *Device) Events() []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := append([]Event(nil), d.events...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Capacity returns the device's total global memory in bytes.
func (d *Device) Capacity() int64 { return d.capacity }

// Used returns the currently allocated bytes.
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// PeakUsed returns the allocation high-water mark.
func (d *Device) PeakUsed() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peakUsed
}

// Buffer is a device-memory allocation. Data really exists (host-side)
// so kernels can operate on it; what the Device enforces is the
// capacity accounting.
type Buffer struct {
	dev  *Device
	size int64
	// Data is the buffer's backing storage as float64s (the dominant
	// payload type in RMCRT); byte-odd sizes round up.
	Data []float64

	freed bool
}

// Size returns the buffer's size in bytes.
func (b *Buffer) Size() int64 { return b.size }

// Alloc claims size bytes of device memory. It fails with
// ErrOutOfMemory when the device is full — callers (the GPU
// DataWarehouse) must handle this, not mask it.
func (d *Device) Alloc(size int64) (*Buffer, error) {
	if size < 0 {
		return nil, fmt.Errorf("gpu: negative allocation %d", size)
	}
	d.mu.Lock()
	if d.used+size > d.capacity {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: want %d, used %d of %d",
			ErrOutOfMemory, size, d.used, d.capacity)
	}
	d.used += size
	if d.used > d.peakUsed {
		d.peakUsed = d.used
	}
	d.mu.Unlock()
	return &Buffer{dev: d, size: size, Data: make([]float64, (size+7)/8)}, nil
}

// Free releases a buffer. Double frees panic: they are accounting bugs.
func (d *Device) Free(b *Buffer) {
	if b == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if b.freed {
		panic("gpu: double free of device buffer")
	}
	b.freed = true
	d.used -= b.size
	b.Data = nil
}

// Stream is an in-order queue of device operations, the CUDA stream
// analogue. Operations on one stream serialize; operations on different
// streams overlap subject to engine availability. Streams are not safe
// for concurrent use (as in CUDA); create one per task.
type Stream struct {
	dev     *Device
	id      int
	readyAt float64
}

// NewStream creates an independent stream.
func (d *Device) NewStream() *Stream {
	d.mu.Lock()
	id := d.nextStream
	d.nextStream++
	d.mu.Unlock()
	return &Stream{dev: d, id: id}
}

// ID returns the stream's identifier.
func (s *Stream) ID() int { return s.id }

// ReadyAt returns the simulated time at which all work queued on the
// stream so far completes.
func (s *Stream) ReadyAt() float64 { return s.readyAt }

// transfer schedules a DMA of n bytes on the least-busy copy engine.
func (s *Stream) transfer(kind EventKind, n int64, label string) float64 {
	d := s.dev
	d.mu.Lock()
	// Least-busy engine — the K20X has two, one typically servicing H2D
	// and the other D2H.
	e := 0
	for i := range d.copyEngines {
		if d.copyEngines[i] < d.copyEngines[e] {
			e = i
		}
	}
	start := s.readyAt
	if d.copyEngines[e] > start {
		start = d.copyEngines[e]
	}
	dur := d.model.PCIeLatency
	if d.model.PCIeBandwidth > 0 {
		dur += float64(n) / d.model.PCIeBandwidth
	}
	end := start + dur
	d.copyEngines[e] = end
	s.readyAt = end
	if d.record {
		d.events = append(d.events, Event{Kind: kind, Stream: s.id, Start: start, End: end, Bytes: n, Label: label})
	}
	d.mu.Unlock()
	return end
}

// H2D queues a host-to-device copy of n bytes and returns its simulated
// completion time.
func (s *Stream) H2D(n int64, label string) float64 { return s.transfer(EventH2D, n, label) }

// D2H queues a device-to-host copy of n bytes and returns its simulated
// completion time.
func (s *Stream) D2H(n int64, label string) float64 { return s.transfer(EventD2H, n, label) }

// Launch queues a kernel costing work units and executes body (if
// non-nil) immediately on the calling goroutine — the results are real,
// the timing is simulated. It returns the kernel's simulated completion
// time.
func (s *Stream) Launch(work float64, label string, body func()) float64 {
	d := s.dev
	d.mu.Lock()
	start := s.readyAt
	if d.compute > start {
		start = d.compute
	}
	dur := d.model.KernelLaunch
	if d.model.Throughput > 0 {
		dur += work / d.model.Throughput
	}
	end := start + dur
	d.compute = end
	s.readyAt = end
	if d.record {
		d.events = append(d.events, Event{Kind: EventKernel, Stream: s.id, Start: start, End: end, Label: label})
	}
	d.mu.Unlock()
	if body != nil {
		body()
	}
	return end
}

// Makespan returns the simulated time at which every queued operation on
// every engine has completed.
func (d *Device) Makespan() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := d.compute
	for _, e := range d.copyEngines {
		if e > m {
			m = e
		}
	}
	return m
}

// ResetTimeline zeroes the simulated clocks and clears recorded events,
// keeping allocations. Each simulated timestep starts from a fresh
// timeline.
func (d *Device) ResetTimeline() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.compute = 0
	for i := range d.copyEngines {
		d.copyEngines[i] = 0
	}
	d.events = d.events[:0]
}

package sched

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/uintah-repro/rmcrt/internal/dw"
	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/gpu"
	"github.com/uintah-repro/rmcrt/internal/gpudw"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/mathutil"
	"github.com/uintah-repro/rmcrt/internal/simmpi"
)

func testGrid(t testing.TB) *grid.Grid {
	t.Helper()
	g, err := grid.New(mathutil.V3(0, 0, 0), mathutil.V3(1, 1, 1),
		grid.Spec{Resolution: grid.Uniform(8), PatchSize: grid.Uniform(4)},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newSched(t testing.TB, g *grid.Grid) *Scheduler {
	t.Helper()
	return NewScheduler(0, 4, g, dw.New(1), dw.New(0), simmpi.NewComm(1))
}

func TestSingleTaskRuns(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	p := g.Levels[0].Patches[0]
	ran := false
	s.AddTask(&Task{
		Name:     "init",
		Patch:    p,
		Computes: []Compute{{Label: "T", Level: 0}},
		Run: func(c *Context) error {
			v := field.NewCC[float64](p.Cells)
			v.Fill(300)
			c.DW().PutCC("T", p.ID, v)
			ran = true
			return nil
		},
	})
	st, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !ran || st.TasksRun != 1 {
		t.Errorf("ran=%v stats=%+v", ran, st)
	}
}

func TestDependencyOrdering(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	var order []string
	var mu atomic.Int32
	record := func(name string) {
		for !mu.CompareAndSwap(0, 1) {
		}
		order = append(order, name)
		mu.Store(0)
	}
	for _, p := range g.Levels[0].Patches {
		p := p
		s.AddTask(&Task{
			Name: "produce", Patch: p,
			Computes: []Compute{{Label: "a", Level: 0}},
			Run: func(c *Context) error {
				v := field.NewCC[float64](p.Cells)
				v.Fill(float64(p.ID))
				c.DW().PutCC("a", p.ID, v)
				record("produce")
				return nil
			},
		})
		s.AddTask(&Task{
			Name: "consume", Patch: p,
			Requires: []Dep{{Label: "a", Level: 0, Ghost: 1}},
			Computes: []Compute{{Label: "b", Level: 0}},
			Run: func(c *Context) error {
				// The ghost gather must succeed: all neighbours done.
				w, err := c.GatherSelf("a", 1)
				if err != nil {
					return err
				}
				v := field.NewCC[float64](p.Cells)
				v.Fill(w.At(p.Cells.Lo))
				c.DW().PutCC("b", p.ID, v)
				record("consume")
				return nil
			},
		})
	}
	st, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if st.TasksRun != 16 {
		t.Errorf("TasksRun = %d, want 16", st.TasksRun)
	}
	// All 8 produces must precede all 8 consumes: each consume requires
	// ghost data from every neighbour patch, and with 8 patches of 4^3 on
	// an 8^3 level each patch touches all others' corners... actually each
	// patch has 7 neighbours (full corner adjacency), so every produce
	// precedes every consume in this topology.
	lastProduce, firstConsume := -1, len(order)
	for i, n := range order {
		if n == "produce" && i > lastProduce {
			lastProduce = i
		}
		if n == "consume" && i < firstConsume {
			firstConsume = i
		}
	}
	if lastProduce > firstConsume {
		t.Errorf("a consume ran before its producers: order %v", order)
	}
}

func TestMissingProducerFailsCompile(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	p := g.Levels[0].Patches[0]
	s.AddTask(&Task{
		Name: "orphan", Patch: p,
		Requires: []Dep{{Label: "ghostvar", Level: 0, Ghost: 0}},
		Run:      func(*Context) error { return nil },
	})
	if _, err := s.Execute(); err == nil {
		t.Fatal("compile should fail for unsatisfiable dependency")
	}
}

func TestDuplicateProducerFailsCompile(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	p := g.Levels[0].Patches[0]
	mk := func() *Task {
		return &Task{
			Name: "dup", Patch: p,
			Computes: []Compute{{Label: "x", Level: 0}},
			Run:      func(*Context) error { return nil },
		}
	}
	s.AddTask(mk())
	s.AddTask(mk())
	if _, err := s.Execute(); err == nil {
		t.Fatal("two producers of one variable must fail compile")
	}
}

func TestTaskNeitherRunNorGPUFails(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	s.AddTask(&Task{Name: "empty", Patch: g.Levels[0].Patches[0]})
	if _, err := s.Execute(); err == nil {
		t.Fatal("task without a body must fail compile")
	}
}

func TestGPUTaskWithoutDeviceFails(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	s.AddTask(&Task{
		Name: "gpu", Patch: g.Levels[0].Patches[0],
		GPU: &GPUStages{},
	})
	if _, err := s.Execute(); err == nil {
		t.Fatal("GPU task without device must fail compile")
	}
}

func TestTaskErrorPropagates(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	boom := errors.New("boom")
	s.AddTask(&Task{
		Name: "fail", Patch: g.Levels[0].Patches[0],
		Run: func(*Context) error { return boom },
	})
	if _, err := s.Execute(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestGPUTaskStages(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	dev := gpu.NewDevice(1<<20, gpu.NewK20X(1e9))
	s.AttachGPU(dev, gpudw.New(dev))
	var stages []string
	var mu atomic.Int32
	rec := func(st string) {
		for !mu.CompareAndSwap(0, 1) {
		}
		stages = append(stages, st)
		mu.Store(0)
	}
	s.AddTask(&Task{
		Name: "rmcrt", Patch: g.Levels[0].Patches[0],
		GPU: &GPUStages{
			H2D: func(c *Context) error {
				c.Stream.H2D(1000, "in")
				rec("h2d")
				return nil
			},
			Kernel: func(c *Context) error {
				c.Stream.Launch(500, "kern", nil)
				rec("kernel")
				return nil
			},
			D2H: func(c *Context) error {
				c.Stream.D2H(1000, "out")
				rec("d2h")
				return nil
			},
		},
	})
	st, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if st.GPUTasksRun != 1 || st.TasksRun != 1 {
		t.Errorf("stats = %+v", st)
	}
	want := []string{"h2d", "kernel", "d2h"}
	if len(stages) != 3 {
		t.Fatalf("stages = %v", stages)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Errorf("stage %d = %s, want %s", i, stages[i], want[i])
		}
	}
	if st.DeviceMakespan <= 0 {
		t.Error("device makespan not recorded")
	}
}

func TestGPUStageErrorPropagates(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	dev := gpu.NewDevice(1<<20, gpu.CostModel{})
	s.AttachGPU(dev, gpudw.New(dev))
	boom := errors.New("kernel launch failure")
	s.AddTask(&Task{
		Name: "bad", Patch: g.Levels[0].Patches[0],
		GPU: &GPUStages{
			Kernel: func(*Context) error { return boom },
		},
	})
	if _, err := s.Execute(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// TestCrossRankExchange runs two ranks: rank 0 computes a variable and
// sends it; rank 1 receives it as an external dependency and consumes
// it. This is the full halo-exchange machinery end to end, with the
// receive flowing through the wait-free pool.
func TestCrossRankExchange(t *testing.T) {
	g := testGrid(t)
	comm := simmpi.NewComm(2)
	// Patch 0 belongs to rank 0, patch 1 to rank 1.
	p0, p1 := g.Levels[0].Patches[0], g.Levels[0].Patches[1]

	var consumed atomic.Bool
	_, err := RunRanks(2, func(rank int) (*Scheduler, error) {
		s := NewScheduler(rank, 2, g, dw.New(1), dw.New(0), comm)
		switch rank {
		case 0:
			s.AddTask(&Task{
				Name: "produceAndSend", Patch: p0,
				Computes: []Compute{{Label: "T", Level: 0}},
				Run: func(c *Context) error {
					v := field.NewCC[float64](p0.Cells)
					v.FillFunc(func(ci grid.IntVector) float64 { return float64(ci.X + ci.Y + ci.Z) })
					c.DW().PutCC("T", p0.ID, v)
					payload := dw.EncodeRegion(v, p0.Cells)
					comm.Isend(0, 1, 42, payload)
					return nil
				},
			})
		case 1:
			s.AddExternalRecv(ExternalRecv{
				Label: "T", PatchID: p0.ID, Level: 0,
				Region: p0.Cells, Source: 0, Tag: 42,
			})
			// Rank 1 owns every patch except p0, so the ghost gather can
			// cover the full grown window once p0's data arrives.
			for _, p := range g.Levels[0].Patches {
				if p == p0 {
					continue
				}
				p := p
				s.AddTask(&Task{
					Name: "initLocal", Patch: p,
					Computes: []Compute{{Label: "T", Level: 0}},
					Run: func(c *Context) error {
						c.DW().PutCC("T", p.ID, field.NewCC[float64](p.Cells))
						return nil
					},
				})
			}
			s.AddTask(&Task{
				Name: "consume", Patch: p1,
				Requires: []Dep{{Label: "T", Level: 0, Ghost: 1}},
				Run: func(c *Context) error {
					w, err := c.GatherSelf("T", 1)
					if err != nil {
						return err
					}
					// A ghost cell inside p0: values must match what
					// rank 0 computed.
					probe := grid.IV(p1.Cells.Lo.X-1, p1.Cells.Lo.Y, p1.Cells.Lo.Z)
					if p0.Cells.Contains(probe) {
						want := float64(probe.X + probe.Y + probe.Z)
						if w.At(probe) != want {
							t.Errorf("ghost value = %v, want %v", w.At(probe), want)
						}
					}
					consumed.Store(true)
					return nil
				},
			})
		}
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !consumed.Load() {
		t.Error("consumer never ran")
	}
}

func TestLevelWideDependency(t *testing.T) {
	// A task with a GhostGlobal requirement waits for every patch's
	// producer on that level (the all-to-all pattern).
	g := testGrid(t)
	s := newSched(t, g)
	var produced atomic.Int32
	for _, p := range g.Levels[0].Patches {
		p := p
		s.AddTask(&Task{
			Name: "prop", Patch: p,
			Computes: []Compute{{Label: "abskg", Level: 0}},
			Run: func(c *Context) error {
				c.DW().PutCC("abskg", p.ID, field.NewCC[float64](p.Cells))
				produced.Add(1)
				return nil
			},
		})
	}
	s.AddTask(&Task{
		Name: "globalGather", LevelIndex: 0,
		Requires: []Dep{{Label: "abskg", Level: 0, Ghost: GhostGlobal}},
		Run: func(c *Context) error {
			if got := produced.Load(); got != 8 {
				t.Errorf("global task ran after only %d producers", got)
			}
			_, err := c.DW().GatherLevel("abskg", g.Levels[0])
			return err
		},
	})
	if _, err := s.Execute(); err != nil {
		t.Fatal(err)
	}
}

func TestPreexistingDWSatisfiesDependency(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	// Initial condition already in the new DW.
	for _, p := range g.Levels[0].Patches {
		s.DW.PutCC("init", p.ID, field.NewCC[float64](p.Cells))
	}
	ran := false
	s.AddTask(&Task{
		Name: "uses-init", Patch: g.Levels[0].Patches[0],
		Requires: []Dep{{Label: "init", Level: 0, Ghost: 1}},
		Run: func(c *Context) error {
			ran = true
			return nil
		},
	})
	if _, err := s.Execute(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("task did not run")
	}
}

func TestEmptyScheduler(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	st, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if st.TasksRun != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestOldNewGenerationNoFalseCycle is the regression test for a real
// deadlock: task A reads last generation's X (FromOld) while task B
// computes this generation's X. Without the old/new distinction the
// compiler wired A to wait for B's X — and if B also (transitively)
// waited on A, the graph deadlocked. A FromOld dependency must never
// create an edge to this graph's producers.
func TestOldNewGenerationNoFalseCycle(t *testing.T) {
	g := testGrid(t)
	old := dw.New(0)
	for _, p := range g.Levels[0].Patches {
		old.PutCC("X", p.ID, field.NewCC[float64](p.Cells))
	}
	s := NewScheduler(0, 2, g, dw.New(1), old, simmpi.NewComm(1))
	var order []string
	var mu atomic.Int32
	rec := func(what string) {
		for !mu.CompareAndSwap(0, 1) {
		}
		order = append(order, what)
		mu.Store(0)
	}
	p0 := g.Levels[0].Patches[0]
	// A: reads old X, produces Y.
	s.AddTask(&Task{
		Name: "A", Patch: p0,
		Requires: []Dep{{Label: "X", Level: 0, Ghost: 1, FromOld: true}},
		Computes: []Compute{{Label: "Y", Level: 0}},
		Run: func(c *Context) error {
			rec("A")
			c.DW().PutCC("Y", p0.ID, field.NewCC[float64](p0.Cells))
			return nil
		},
	})
	// B: consumes A's Y and produces the NEW generation's X — the exact
	// shape of an RK2 timestep (predictor reads old T, corrector writes
	// new T).
	s.AddTask(&Task{
		Name: "B", Patch: p0,
		Requires: []Dep{{Label: "Y", Level: 0, Ghost: 0}},
		Computes: []Compute{{Label: "X", Level: 0}},
		Run: func(c *Context) error {
			rec("B")
			c.DW().PutCC("X", p0.ID, field.NewCC[float64](p0.Cells))
			return nil
		},
	})
	st, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if st.TasksRun != 2 {
		t.Fatalf("TasksRun = %d", st.TasksRun)
	}
	if len(order) != 2 || order[0] != "A" || order[1] != "B" {
		t.Errorf("order = %v, want [A B]", order)
	}
}

// TestFromOldMissingFailsCompile: a FromOld dependency absent from the
// old warehouse is a graph specification error, caught at compile.
func TestFromOldMissingFailsCompile(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	s.AddTask(&Task{
		Name: "orphan", Patch: g.Levels[0].Patches[0],
		Requires: []Dep{{Label: "never", Level: 0, Ghost: 0, FromOld: true}},
		Run:      func(*Context) error { return nil },
	})
	if _, err := s.Execute(); err == nil {
		t.Fatal("missing old-generation dependency must fail compile")
	}
}

func TestDOTExport(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	p := g.Levels[0].Patches[0]
	s.AddTask(&Task{
		Name: "produce", Patch: p,
		Computes: []Compute{{Label: "v", Level: 0}},
		Run:      func(c *Context) error { return nil },
	})
	s.AddTask(&Task{
		Name: "consume", Patch: p,
		Requires: []Dep{{Label: "v", Level: 0, Ghost: 0}},
		Run:      func(*Context) error { return nil },
	})
	s.AddExternalRecv(ExternalRecv{Label: "w", PatchID: 99, Level: 0,
		Region: p.Cells, Source: 0, Tag: 7})
	dot, err := s.DOT()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph taskgraph", "produce@p0", "consume@p0",
		"n0 -> n1", "recv w p99 from rank 0"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// A broken graph fails instead of rendering garbage.
	bad := newSched(t, g)
	bad.AddTask(&Task{Name: "orphan", Patch: p,
		Requires: []Dep{{Label: "none", Level: 0}},
		Run:      func(*Context) error { return nil }})
	if _, err := bad.DOT(); err == nil {
		t.Error("DOT of uncompilable graph should fail")
	}
}

package sched

import (
	"sync/atomic"
	"testing"

	"github.com/uintah-repro/rmcrt/internal/dw"
	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/mathutil"
	"github.com/uintah-repro/rmcrt/internal/simmpi"
)

// exchangeGrid builds a 2-level grid (coarse 8³ in 4³ patches, fine 16³
// in 4³ patches) distributed over nRanks by space-filling curve.
func exchangeGrid(t testing.TB, nRanks int) *grid.Grid {
	t.Helper()
	g, err := grid.New(mathutil.V3(0, 0, 0), mathutil.V3(1, 1, 1),
		grid.Spec{Resolution: grid.Uniform(8), PatchSize: grid.Uniform(4)},
		grid.Spec{Resolution: grid.Uniform(16), PatchSize: grid.Uniform(4)},
	)
	if err != nil {
		t.Fatal(err)
	}
	g.AssignSFC(nRanks)
	return g
}

// cellValue is the globally-known test field.
func cellValue(c grid.IntVector) float64 {
	return float64(c.X*10000 + c.Y*100 + c.Z)
}

// addInitTasks creates the producer task for every local patch.
func addInitTasks(s *Scheduler, g *grid.Grid, li int, label string) {
	for _, p := range g.Levels[li].Patches {
		if p.Rank != s.Rank {
			continue
		}
		p := p
		s.AddTask(&Task{
			Name: "init", Patch: p,
			Computes: []Compute{{Label: label, Level: li}},
			Run: func(c *Context) error {
				v := field.NewCC[float64](p.Cells)
				v.FillFunc(cellValue)
				c.DW().PutCC(label, p.ID, v)
				return nil
			},
		})
	}
}

// TestHaloExchangeAcrossRanks runs a full distributed ghost exchange:
// every rank initializes its own patches, halos flow over simulated
// MPI through the wait-free pool, and every local patch then gathers a
// ghost window whose values must match the global field.
func TestHaloExchangeAcrossRanks(t *testing.T) {
	const nRanks, ghost = 4, 2
	comm := simmpi.NewComm(nRanks)
	g := exchangeGrid(t, nRanks)
	fineIdx := 1
	var verified atomic.Int64

	_, err := RunRanks(nRanks, func(rank int) (*Scheduler, error) {
		s := NewScheduler(rank, 4, g, dw.New(1), dw.New(0), comm)
		addInitTasks(s, g, fineIdx, "T")
		s.RegisterHaloExchange(g, fineIdx, "T", ghost, 1000)
		for _, p := range g.Levels[fineIdx].Patches {
			if p.Rank != rank {
				continue
			}
			p := p
			s.AddTask(&Task{
				Name: "verify", Patch: p,
				Requires: []Dep{{Label: "T", Level: fineIdx, Ghost: ghost}},
				Run: func(c *Context) error {
					w, err := c.GatherSelf("T", ghost)
					if err != nil {
						return err
					}
					w.Box().ForEach(func(ci grid.IntVector) {
						if w.At(ci) != cellValue(ci) {
							t.Errorf("rank %d patch %d: ghost value at %v = %v, want %v",
								rank, p.ID, ci, w.At(ci), cellValue(ci))
						}
					})
					verified.Add(1)
					return nil
				},
			})
		}
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if verified.Load() != int64(len(g.Levels[fineIdx].Patches)) {
		t.Errorf("verified %d of %d patches", verified.Load(), len(g.Levels[fineIdx].Patches))
	}
	// Nothing stuck in flight.
	for r := 0; r < nRanks; r++ {
		if comm.PendingUnexpected(r) != 0 || comm.PendingPosted(r) != 0 {
			t.Errorf("rank %d has pending traffic", r)
		}
	}
}

// TestLevelGatherAcrossRanks: after the gather every rank holds the
// whole level locally — the coarse radiation mesh pattern.
func TestLevelGatherAcrossRanks(t *testing.T) {
	const nRanks = 4
	comm := simmpi.NewComm(nRanks)
	g := exchangeGrid(t, nRanks)
	coarseIdx := 0
	var verified atomic.Int64

	_, err := RunRanks(nRanks, func(rank int) (*Scheduler, error) {
		s := NewScheduler(rank, 4, g, dw.New(1), dw.New(0), comm)
		addInitTasks(s, g, coarseIdx, "abskg")
		s.RegisterLevelGather(g, coarseIdx, "abskg", 5000)
		s.AddTask(&Task{
			Name: "verify", LevelIndex: coarseIdx,
			Requires: []Dep{{Label: "abskg", Level: coarseIdx, Ghost: GhostGlobal}},
			Run: func(c *Context) error {
				lvl := g.Levels[coarseIdx]
				full, err := c.DW().GatherLevel("abskg", lvl)
				if err != nil {
					return err
				}
				lvl.IndexBox().ForEach(func(ci grid.IntVector) {
					if full.At(ci) != cellValue(ci) {
						t.Errorf("rank %d: gathered value at %v = %v, want %v",
							rank, ci, full.At(ci), cellValue(ci))
					}
				})
				verified.Add(1)
				return nil
			},
		})
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if verified.Load() != nRanks {
		t.Errorf("verified on %d of %d ranks", verified.Load(), nRanks)
	}
}

// TestLevelGatherTrafficMatchesModel checks the measured simulated-MPI
// byte volume of the all-gather against the analytic expectation:
// every rank must receive (level bytes − its local share).
func TestLevelGatherTrafficMatchesModel(t *testing.T) {
	const nRanks = 4
	comm := simmpi.NewComm(nRanks)
	g := exchangeGrid(t, nRanks)

	_, err := RunRanks(nRanks, func(rank int) (*Scheduler, error) {
		s := NewScheduler(rank, 2, g, dw.New(1), dw.New(0), comm)
		addInitTasks(s, g, 0, "abskg")
		s.RegisterLevelGather(g, 0, "abskg", 5000)
		// A consumer forces all receives to complete.
		s.AddTask(&Task{
			Name: "sink", LevelIndex: 0,
			Requires: []Dep{{Label: "abskg", Level: 0, Ghost: GhostGlobal}},
			Run:      func(*Context) error { return nil },
		})
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	lvl := g.Levels[0]
	levelBytes := int64(lvl.NumCells()) * 8
	var wantRecv int64
	for r := 0; r < nRanks; r++ {
		var local int64
		for _, p := range lvl.Patches {
			if p.Rank == r {
				local += int64(p.NumCells()) * 8
			}
		}
		wantRecv += levelBytes - local
	}
	got := comm.TotalStats().BytesRecv
	if got != wantRecv {
		t.Errorf("gather moved %d bytes, model expects %d", got, wantRecv)
	}
}

// TestExchangeStatsAccounting: the registration's own accounting must
// agree with what the communicator later measures.
func TestExchangeStatsAccounting(t *testing.T) {
	const nRanks = 2
	comm := simmpi.NewComm(nRanks)
	g := exchangeGrid(t, nRanks)
	var statsOut [nRanks]ExchangeStats

	_, err := RunRanks(nRanks, func(rank int) (*Scheduler, error) {
		s := NewScheduler(rank, 2, g, dw.New(1), dw.New(0), comm)
		addInitTasks(s, g, 0, "v")
		statsOut[rank] = s.RegisterLevelGather(g, 0, "v", 9000)
		s.AddTask(&Task{
			Name: "sink", LevelIndex: 0,
			Requires: []Dep{{Label: "v", Level: 0, Ghost: GhostGlobal}},
			Run:      func(*Context) error { return nil },
		})
		return s, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var declared int64
	for r := 0; r < nRanks; r++ {
		declared += statsOut[r].BytesOut
	}
	if got := comm.TotalStats().BytesSent; got != declared {
		t.Errorf("declared %d bytes out, communicator measured %d", declared, got)
	}
}

package sched

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the compiled task graph in Graphviz format — Uintah has
// the same facility for debugging task graphs. Call after adding all
// tasks; it compiles (without executing) and returns the digraph, with
// GPU tasks drawn as boxes, CPU tasks as ellipses, and external
// receives as dashed inputs.
func (s *Scheduler) DOT() (string, error) {
	if err := s.compile(); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph taskgraph {\n  rankdir=LR;\n")
	id := make(map[*node]int, len(s.nodes))
	for i, n := range s.nodes {
		id[n] = i
		shape := "ellipse"
		if n.task.GPU != nil {
			shape = "box"
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", i, n.task.String(), shape)
	}
	for _, n := range s.nodes {
		// outs may contain duplicates (multiple keys); dedup for the
		// rendering.
		seen := map[int]bool{}
		var outs []int
		for _, o := range n.outs {
			if !seen[id[o]] {
				seen[id[o]] = true
				outs = append(outs, id[o])
			}
		}
		sort.Ints(outs)
		for _, o := range outs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", id[n], o)
		}
	}
	for i, r := range s.externals {
		fmt.Fprintf(&b, "  x%d [label=\"recv %s p%d from rank %d\" shape=note style=dashed];\n",
			i, r.Label, r.PatchID, r.Source)
	}
	fmt.Fprintf(&b, "}\n")
	return b.String(), nil
}

// Package sched implements a miniature of Uintah's DAG-based task
// scheduler and hybrid runtime: tasks declare what they require and
// compute against the DataWarehouse, the scheduler compiles the
// dependency graph, generates the needed (simulated) MPI receives, and
// executes tasks out-of-order on a pool of worker goroutines — each
// worker performing its own MPI progress through the wait-free
// commpool.Pool, exactly the MPI_THREAD_MULTIPLE pattern the paper
// hardened.
//
// GPU tasks flow through the multi-stage queue architecture of [6]: a
// host-to-device stage, a kernel stage and a device-to-host stage, with
// per-task CUDA-style streams so copies and kernels from different
// patches overlap on the simulated device.
package sched

import (
	"fmt"

	"github.com/uintah-repro/rmcrt/internal/dw"
	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/gpu"
	"github.com/uintah-repro/rmcrt/internal/gpudw"
	"github.com/uintah-repro/rmcrt/internal/grid"
)

// GhostGlobal mirrors dw.GhostGlobal for task dependency declarations.
const GhostGlobal = dw.GhostGlobal

// Dep is one "requires" declaration: the task needs variable Label on
// level Level with Ghost halo cells around its patch (GhostGlobal for
// the whole level — the radiation coarse-mesh requirement).
//
// FromOld marks the dependency as coming from the *previous*
// generation's warehouse (Uintah's OldDW). Old-generation data is
// always already present, so FromOld dependencies never create edges
// to this graph's producers — without the distinction, a task reading
// last step's T while another computes this step's T would deadlock.
type Dep struct {
	Label   string
	Level   int
	Ghost   int
	FromOld bool
}

// Compute is one "computes" declaration: the task will Put variable
// Label for its own patch (or its level if the task is level-wide).
type Compute struct {
	Label string
	Level int
}

// Context is handed to task bodies. It exposes the warehouse and
// convenience gathers for the task's own patch.
type Context struct {
	Sched *Scheduler
	Task  *Task
	// Stream is the task's device stream (GPU tasks only).
	Stream *gpu.Stream
	// Device and GPUDW are the device servicing this GPU task and its
	// warehouse (GPU tasks only). With several on-node GPUs attached,
	// different tasks see different devices.
	Device *gpu.Device
	GPUDW  *gpudw.DW
}

// DW returns the new (being-computed) warehouse.
func (c *Context) DW() *dw.DW { return c.Sched.DW }

// OldDW returns the previous generation's warehouse (inputs).
func (c *Context) OldDW() *dw.DW { return c.Sched.OldDW }

// GatherSelf materializes label over the task's patch grown by ghost
// cells, clipped to the level.
func (c *Context) GatherSelf(label string, ghost int) (*field.CC[float64], error) {
	lvl := c.Sched.Grid.Levels[c.Task.Patch.LevelIndex]
	return c.Sched.DW.GatherWindow(label, lvl, c.Task.Patch.Cells.Grow(ghost))
}

// Task is one schedulable unit of work, bound to a patch (Patch != nil)
// or to a whole level (Patch == nil, LevelIndex set).
type Task struct {
	Name       string
	Patch      *grid.Patch
	LevelIndex int // used when Patch == nil
	Requires   []Dep
	Computes   []Compute

	// Run executes a CPU task. Exactly one of Run or GPU must be set.
	Run func(*Context) error
	// GPU marks a device task executed through the staged queues.
	GPU *GPUStages
}

// GPUStages are the three phases of a device task. Each stage receives
// the task's stream; H2D typically acquires level-database entries and
// uploads patch inputs, Kernel launches the computation, D2H copies
// results back and releases shared entries.
type GPUStages struct {
	H2D    func(*Context) error
	Kernel func(*Context) error
	D2H    func(*Context) error
}

func (t *Task) String() string {
	if t.Patch != nil {
		return fmt.Sprintf("%s@p%d", t.Name, t.Patch.ID)
	}
	return fmt.Sprintf("%s@L%d", t.Name, t.LevelIndex)
}

// level returns the level index the task operates on.
func (t *Task) level() int {
	if t.Patch != nil {
		return t.Patch.LevelIndex
	}
	return t.LevelIndex
}

// ExternalRecv declares that variable Label for patch PatchID (window
// Region) will arrive from rank Source with the given Tag. The
// scheduler posts the receive up front (into the wait-free pool),
// decodes the payload into the warehouse on completion, and treats the
// arrival as the producer for dependent tasks.
type ExternalRecv struct {
	Label   string
	PatchID int
	Level   int
	Region  grid.Box
	Source  int
	Tag     int
}

// Stats reports what a scheduler run did.
type Stats struct {
	TasksRun     int64
	GPUTasksRun  int64
	MPIProcessed int64
	// LocalCommSeconds is wall time workers spent posting and
	// processing MPI communication — the quantity Table I reports.
	LocalCommSeconds float64

	// TaskSeconds is the accumulated wall time per task name (all
	// stages for GPU tasks) — Uintah's per-task profiling, the numbers
	// its load balancer feeds on.
	TaskSeconds map[string]float64

	// Degradation accounting (all zero on a clean run). CommExpired
	// counts external receives that exhausted their poll budget
	// (ErrRankLost); PoolDrained and RecvsCancelled count the requests
	// reclaimed by the abort path — together they prove a failed
	// timestep leaked nothing.
	CommExpired    int64
	PoolDrained    int64
	RecvsCancelled int64

	// Device accounting (zero without a GPU).
	DeviceMakespan float64
	DevicePeakMem  int64
}

package sched

import (
	"sync/atomic"
	"testing"
	"time"

	"github.com/uintah-repro/rmcrt/internal/dw"
	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/gpu"
	"github.com/uintah-repro/rmcrt/internal/gpudw"
	"github.com/uintah-repro/rmcrt/internal/simmpi"
)

// TestMultiGPURoundRobin attaches two devices and checks GPU tasks are
// spread across both — the paper's "arbitrary number of on-node GPUs".
func TestMultiGPURoundRobin(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	dev1 := gpu.NewDevice(1<<20, gpu.NewK20X(1e9))
	dev2 := gpu.NewDevice(1<<20, gpu.NewK20X(1e9))
	s.AttachGPU(dev1, gpudw.New(dev1))
	s.AttachGPU(dev2, gpudw.New(dev2))
	if s.Device != dev1 {
		t.Fatal("Device should remain the first attached device")
	}

	devicesSeen := make(map[*gpu.Device]*atomic.Int64)
	devicesSeen[dev1] = &atomic.Int64{}
	devicesSeen[dev2] = &atomic.Int64{}
	for _, p := range g.Levels[0].Patches { // 8 patches
		p := p
		s.AddTask(&Task{
			Name: "gpuwork", Patch: p,
			GPU: &GPUStages{
				Kernel: func(c *Context) error {
					if c.Device == nil || c.GPUDW == nil {
						t.Error("GPU context missing device")
						return nil
					}
					c.Stream.Launch(1000, "k", nil)
					devicesSeen[c.Device].Add(1)
					return nil
				},
			},
		})
	}
	st, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if st.GPUTasksRun != 8 {
		t.Fatalf("GPUTasksRun = %d", st.GPUTasksRun)
	}
	n1, n2 := devicesSeen[dev1].Load(), devicesSeen[dev2].Load()
	if n1 != 4 || n2 != 4 {
		t.Errorf("round-robin split = %d/%d, want 4/4", n1, n2)
	}
	if dev1.Makespan() <= 0 || dev2.Makespan() <= 0 {
		t.Error("both devices should have simulated work")
	}
}

// TestMultiGPUStagePinning: a task's three stages must all run against
// the same device and stream.
func TestMultiGPUStagePinning(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	dev1 := gpu.NewDevice(1<<20, gpu.CostModel{})
	dev2 := gpu.NewDevice(1<<20, gpu.CostModel{})
	s.AttachGPU(dev1, gpudw.New(dev1))
	s.AttachGPU(dev2, gpudw.New(dev2))

	type seen struct {
		dev    *gpu.Device
		stream *gpu.Stream
	}
	records := make([][]seen, 4)
	for i := 0; i < 4; i++ {
		i := i
		rec := func(c *Context) error {
			records[i] = append(records[i], seen{c.Device, c.Stream})
			return nil
		}
		s.AddTask(&Task{
			Name: "pin", Patch: g.Levels[0].Patches[i],
			GPU: &GPUStages{H2D: rec, Kernel: rec, D2H: rec},
		})
	}
	if _, err := s.Execute(); err != nil {
		t.Fatal(err)
	}
	for i, r := range records {
		if len(r) != 3 {
			t.Fatalf("task %d ran %d stages", i, len(r))
		}
		if r[0].dev != r[1].dev || r[1].dev != r[2].dev {
			t.Errorf("task %d hopped devices across stages", i)
		}
		if r[0].stream != r[1].stream || r[1].stream != r[2].stream {
			t.Errorf("task %d changed streams across stages", i)
		}
	}
}

// TestOutOfOrderExecution: a slow ready task must not block unrelated
// ready tasks — the dynamic, out-of-order task execution Uintah uses to
// reduce MPI wait time [18].
func TestOutOfOrderExecution(t *testing.T) {
	g := testGrid(t)
	comm := simmpi.NewComm(1)
	s := NewScheduler(0, 4, g, dw.New(1), dw.New(0), comm)

	slowStarted := make(chan struct{})
	release := make(chan struct{})
	var fastDone atomic.Int32

	s.AddTask(&Task{
		Name: "slow", Patch: g.Levels[0].Patches[0],
		Run: func(*Context) error {
			close(slowStarted)
			<-release
			return nil
		},
	})
	for i := 1; i < 8; i++ {
		p := g.Levels[0].Patches[i]
		s.AddTask(&Task{
			Name: "fast", Patch: p,
			Run: func(*Context) error {
				fastDone.Add(1)
				return nil
			},
		})
	}
	done := make(chan error)
	go func() {
		_, err := s.Execute()
		done <- err
	}()
	<-slowStarted
	// While the slow task is blocked, the other workers must finish all
	// fast tasks.
	deadline := time.After(5 * time.Second)
	for fastDone.Load() != 7 {
		select {
		case <-deadline:
			t.Fatalf("only %d fast tasks completed while slow task blocked", fastDone.Load())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestCarriedForwardVariable: a dependency satisfied by the *old*
// warehouse (previous timestep's result) compiles and runs — Uintah's
// OldDW/NewDW pattern.
func TestCarriedForwardVariable(t *testing.T) {
	g := testGrid(t)
	old := dw.New(0)
	for _, p := range g.Levels[0].Patches {
		v := field.NewCC[float64](p.Cells)
		v.Fill(42)
		old.PutCC("T_old", p.ID, v)
	}
	s := NewScheduler(0, 2, g, dw.New(1), old, simmpi.NewComm(1))
	ran := false
	s.AddTask(&Task{
		Name: "advance", Patch: g.Levels[0].Patches[0],
		Requires: []Dep{{Label: "T_old", Level: 0, Ghost: 1, FromOld: true}},
		Run: func(c *Context) error {
			v, err := c.OldDW().GetCC("T_old", c.Task.Patch.ID)
			if err != nil {
				return err
			}
			if v.At(c.Task.Patch.Cells.Lo) != 42 {
				t.Error("old warehouse value wrong")
			}
			ran = true
			return nil
		},
	})
	if _, err := s.Execute(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("task did not run")
	}
}

// TestTaskTimersAccumulate: per-task-name wall time shows up in Stats,
// the profiling Uintah's load balancer consumes.
func TestTaskTimersAccumulate(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	for i := 0; i < 4; i++ {
		s.AddTask(&Task{
			Name: "busy", Patch: g.Levels[0].Patches[i],
			Run: func(*Context) error {
				time.Sleep(2 * time.Millisecond)
				return nil
			},
		})
	}
	s.AddTask(&Task{
		Name: "instant", Patch: g.Levels[0].Patches[4],
		Run: func(*Context) error { return nil },
	})
	st, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if st.TaskSeconds["busy"] < 0.008 {
		t.Errorf("busy time = %v, want >= 8ms (4 tasks x 2ms)", st.TaskSeconds["busy"])
	}
	if st.TaskSeconds["busy"] <= st.TaskSeconds["instant"] {
		t.Errorf("busy (%v) should dominate instant (%v)",
			st.TaskSeconds["busy"], st.TaskSeconds["instant"])
	}
	if _, ok := st.TaskSeconds["instant"]; !ok {
		t.Error("instant task missing from the profile")
	}
}

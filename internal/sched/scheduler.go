package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/uintah-repro/rmcrt/internal/commpool"
	"github.com/uintah-repro/rmcrt/internal/dw"
	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/gpu"
	"github.com/uintah-repro/rmcrt/internal/gpudw"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/metrics"
	"github.com/uintah-repro/rmcrt/internal/simmpi"
)

// ErrRankLost is the typed failure of a timestep whose external
// receives timed out: the peer rank is unreachable (dead, or its
// messages were lost in transit). Execute wraps it with the specific
// receive that expired; callers match with errors.Is.
var ErrRankLost = errors.New("sched: rank unreachable (external receive timed out)")

// Scheduler executes one rank's task graph for one timestep. Create it,
// add tasks and external receives, then call Execute. A fresh Scheduler
// is built per timestep, matching Uintah's per-generation task graphs.
type Scheduler struct {
	Rank    int
	Workers int
	Grid    *grid.Grid
	DW      *dw.DW
	OldDW   *dw.DW
	Comm    *simmpi.Comm

	// CommPollBudget bounds how many times an external receive may be
	// polled not-ready before the timestep fails with ErrRankLost
	// (0 = wait forever, the fault-free default). The budget is a count
	// of poll events, not wall time, so fault schedules stay
	// deterministic. On failure the scheduler drains its pool and
	// cancels posted receives — a lost rank degrades the timestep to a
	// typed error, never to leaked requests or buffers.
	CommPollBudget int64

	// Device and GPUDW are the rank's first attached device and its
	// warehouse (nil for CPU-only ranks). Additional devices attached
	// with AttachGPU service GPU tasks round-robin — "an arbitrary
	// number of on-node GPUs".
	Device *gpu.Device
	GPUDW  *gpudw.DW
	gpus   []gpuSlot

	tasks     []*Task
	externals []ExternalRecv

	// metrics is the optional observability registry (PublishMetrics).
	metrics *metrics.Registry

	// run state
	nodes     []*node
	producers map[prodKey][]*node
	pool      *commpool.Pool
	recvReqs  []*simmpi.Request
	ready     chan *node
	remaining atomic.Int64
	done      chan struct{}
	errMu     sync.Mutex
	errs      []error
	failed    atomic.Bool

	stats     Stats
	commNanos atomic.Int64

	timeMu    sync.Mutex
	taskNanos map[string]int64
}

// prodKey identifies what a node produces or an external receive
// delivers: a (label, patch) pair or a (label, level) pair (patch = -1).
type prodKey struct {
	label string
	patch int
	level int
}

// nodeStage tracks a GPU task's progress through the staged queues.
type nodeStage int32

const (
	stageCPU nodeStage = iota
	stageH2D
	stageKernel
	stageD2H
)

// gpuSlot pairs one device with its warehouse.
type gpuSlot struct {
	dev *gpu.Device
	gdw *gpudw.DW
}

type node struct {
	task    *Task
	waiting atomic.Int64 // unsatisfied dependency count
	outs    []*node      // dependents
	stage   nodeStage
	stream  *gpu.Stream
	gpuIdx  int // which attached device services this task
}

// NewScheduler constructs a scheduler for rank with the given worker
// count (the paper uses 16 threads + 1 GPU per Titan node).
func NewScheduler(rank, workers int, g *grid.Grid, newDW, oldDW *dw.DW, comm *simmpi.Comm) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{
		Rank:      rank,
		Workers:   workers,
		Grid:      g,
		DW:        newDW,
		OldDW:     oldDW,
		Comm:      comm,
		producers: make(map[prodKey][]*node),
		pool:      commpool.NewPool(),
		done:      make(chan struct{}),
		taskNanos: make(map[string]int64),
	}
}

// AttachGPU gives the scheduler a device and its warehouse; GPU tasks
// fail at compile time without one. Calling it repeatedly attaches
// additional on-node devices, over which GPU tasks are distributed
// round-robin (each task's stages stay pinned to its device).
func (s *Scheduler) AttachGPU(dev *gpu.Device, gdw *gpudw.DW) {
	if len(s.gpus) == 0 {
		s.Device = dev
		s.GPUDW = gdw
	}
	s.gpus = append(s.gpus, gpuSlot{dev: dev, gdw: gdw})
}

// PublishMetrics instruments the scheduler (and its wait-free comm
// pool) with the given registry: per-Execute task counts, local comm
// time and makespan land there as counters/histograms. Call before
// Execute.
func (s *Scheduler) PublishMetrics(reg *metrics.Registry) {
	s.metrics = reg
	s.pool.Publish(reg)
}

// publishStats pushes one Execute's statistics into the registry.
func (s *Scheduler) publishStats(st Stats, elapsed float64) {
	reg := s.metrics
	if reg == nil {
		return
	}
	reg.Counter("sched_tasks_run_total", "tasks executed across timesteps").Add(st.TasksRun)
	reg.Counter("sched_gpu_tasks_run_total", "GPU tasks executed").Add(st.GPUTasksRun)
	reg.Counter("sched_mpi_processed_total", "communications completed through the wait-free pool").Add(st.MPIProcessed)
	reg.Counter("sched_executes_total", "task-graph executions").Inc()
	reg.Counter("sched_comm_expired_total", "external receives that exhausted their poll budget (rank lost)").Add(st.CommExpired)
	reg.Counter("sched_recvs_cancelled_total", "posted receives cancelled by the abort path").Add(st.RecvsCancelled)
	reg.Histogram("sched_execute_seconds", "wall time per task-graph execution", metrics.DefBuckets).Observe(elapsed)
	reg.Histogram("sched_local_comm_seconds", "per-execution local communication time (Table I quantity)", metrics.DefBuckets).Observe(st.LocalCommSeconds)
}

// AddTask registers a task.
func (s *Scheduler) AddTask(t *Task) {
	s.tasks = append(s.tasks, t)
}

// AddExternalRecv registers an incoming variable from another rank.
func (s *Scheduler) AddExternalRecv(r ExternalRecv) {
	s.externals = append(s.externals, r)
}

// compile builds the dependency graph: producer edges from computes (and
// external receives) to requires. A dependency with no producer is
// satisfied from the warehouse if present, otherwise compilation fails —
// Uintah likewise detects mis-specified task graphs.
func (s *Scheduler) compile() error {
	s.nodes = make([]*node, 0, len(s.tasks))
	byProduct := make(map[prodKey]*node)
	nextGPU := 0
	for _, t := range s.tasks {
		if (t.Run == nil) == (t.GPU == nil) {
			return fmt.Errorf("sched: task %v must set exactly one of Run or GPU", t)
		}
		if t.GPU != nil && len(s.gpus) == 0 {
			return fmt.Errorf("sched: GPU task %v on rank %d without an attached device", t, s.Rank)
		}
		n := &node{task: t}
		if t.GPU != nil {
			n.stage = stageH2D
			n.gpuIdx = nextGPU % len(s.gpus)
			nextGPU++
		}
		s.nodes = append(s.nodes, n)
		for _, c := range t.Computes {
			k := prodKey{c.Label, -1, c.Level}
			if t.Patch != nil {
				k.patch = t.Patch.ID
			}
			if prev, dup := byProduct[k]; dup {
				return fmt.Errorf("sched: %v and %v both compute %q", prev.task, t, c.Label)
			}
			byProduct[k] = n
		}
	}
	// External receives are producers too (satisfied by MPI arrival).
	extDone := make(map[prodKey]bool)
	for _, r := range s.externals {
		k := prodKey{r.Label, r.PatchID, r.Level}
		if _, dup := byProduct[k]; dup {
			return fmt.Errorf("sched: external recv and a task both produce %q on patch %d", r.Label, r.PatchID)
		}
		if extDone[k] {
			return fmt.Errorf("sched: duplicate external recv for %q on patch %d", r.Label, r.PatchID)
		}
		extDone[k] = true
	}

	// Wire consumer edges.
	for _, n := range s.nodes {
		for _, d := range n.task.Requires {
			for _, k := range s.depKeys(n.task, d) {
				if d.FromOld {
					// Previous-generation data: must already exist in
					// the old warehouse, and never depends on this
					// graph's producers.
					if !s.presentIn(s.OldDW, k) {
						return fmt.Errorf("sched: %v requires %q (level %d, patch %d) from the old warehouse, which lacks it",
							n.task, k.label, k.level, k.patch)
					}
					continue
				}
				if p, ok := byProduct[k]; ok {
					if p != n {
						p.outs = append(p.outs, n)
						n.waiting.Add(1)
					}
					continue
				}
				if extDone[k] {
					// Arrival wiring happens in postExternals.
					continue
				}
				if s.presentInDW(k) {
					continue
				}
				return fmt.Errorf("sched: %v requires %q (level %d, patch %d) which nothing produces",
					n.task, k.label, k.level, k.patch)
			}
		}
	}
	return nil
}

// depKeys expands one dependency of task t into concrete producer keys.
func (s *Scheduler) depKeys(t *Task, d Dep) []prodKey {
	lvl := s.Grid.Levels[d.Level]
	if d.Ghost == GhostGlobal || t.Patch == nil {
		// Whole-level requirement: either a level variable, or every
		// patch variable on that level. Prefer the level variable if
		// someone produces or already put it.
		k := prodKey{d.Label, -1, d.Level}
		if s.presentInDW(k) {
			return []prodKey{k}
		}
		// Check whether a task computes the level var.
		for _, n := range s.nodes {
			for _, c := range n.task.Computes {
				if c.Label == d.Label && c.Level == d.Level && n.task.Patch == nil {
					return []prodKey{k}
				}
			}
		}
		keys := make([]prodKey, 0, len(lvl.Patches))
		for _, p := range lvl.Patches {
			keys = append(keys, prodKey{d.Label, p.ID, d.Level})
		}
		return keys
	}
	// Patch-local requirement with a ghost halo: every patch whose cells
	// intersect the grown box, on the dependency's level. When the
	// dependency is on a coarser level than the task's patch, the halo
	// is taken around the patch's projection.
	box := t.Patch.Cells
	if d.Level != t.Patch.LevelIndex {
		if d.Level < t.Patch.LevelIndex {
			box = box.Coarsen(s.ratioBetween(d.Level, t.Patch.LevelIndex))
		} else {
			box = box.Refine(s.ratioBetween(t.Patch.LevelIndex, d.Level))
		}
	}
	box = box.Grow(d.Ghost).Intersect(lvl.IndexBox())
	var keys []prodKey
	for _, p := range lvl.Patches {
		if !p.Cells.Intersect(box).Empty() {
			keys = append(keys, prodKey{d.Label, p.ID, d.Level})
		}
	}
	return keys
}

// ratioBetween composes refinement ratios from coarse to fine.
func (s *Scheduler) ratioBetween(coarse, fine int) grid.IntVector {
	rr := grid.Uniform(1)
	for li := coarse + 1; li <= fine; li++ {
		rr = rr.Mul(s.Grid.Levels[li].RefinementRatio)
	}
	return rr
}

// presentInDW reports whether the key's data is already in the new or
// old warehouse (initial conditions, carried-forward variables).
func (s *Scheduler) presentInDW(k prodKey) bool {
	return s.presentIn(s.DW, k) || s.presentIn(s.OldDW, k)
}

// presentIn reports whether one warehouse holds the key's data.
func (s *Scheduler) presentIn(d *dw.DW, k prodKey) bool {
	if d == nil {
		return false
	}
	if k.patch >= 0 {
		if d.HasCC(k.label, k.patch) {
			return true
		}
		if _, err := d.GetCellType(k.label, k.patch); err == nil {
			return true
		}
		return false
	}
	if _, err := d.GetLevelCC(k.label, k.level); err == nil {
		return true
	}
	if _, err := d.GetLevelCellType(k.label, k.level); err == nil {
		return true
	}
	return false
}

// postExternals posts all external receives into the wait-free pool and
// wires their completion to dependent tasks.
func (s *Scheduler) postExternals() {
	for _, r := range s.externals {
		r := r
		k := prodKey{r.Label, r.PatchID, r.Level}
		// Find consumers whose dependency expands to this key.
		var consumers []*node
		for _, n := range s.nodes {
			for _, d := range n.task.Requires {
				for _, dk := range s.depKeys(n.task, d) {
					if dk == k {
						consumers = append(consumers, n)
					}
				}
			}
		}
		for _, c := range consumers {
			c.waiting.Add(1)
		}
		t0 := time.Now()
		req := s.Comm.Irecv(s.Rank, r.Source, r.Tag)
		s.commNanos.Add(time.Since(t0).Nanoseconds())
		s.recvReqs = append(s.recvReqs, req)
		rec := &commpool.Record{Req: req, MaxPolls: s.CommPollBudget}
		rec.OnExpire = func(*commpool.Record) {
			atomic.AddInt64(&s.stats.CommExpired, 1)
			s.fail(fmt.Errorf("sched: rank %d: recv %q patch %d from rank %d tag %d expired after %d polls: %w",
				s.Rank, r.Label, r.PatchID, r.Source, r.Tag, s.CommPollBudget, ErrRankLost))
		}
		rec.OnDone = func(rc *commpool.Record) {
			v := field.NewCC[float64](r.Region)
			if err := dw.DecodeRegion(v, r.Region, rc.Req.Data()); err != nil {
				s.fail(fmt.Errorf("sched: decoding external %q: %w", r.Label, err))
				return
			}
			s.DW.PutCC(r.Label, r.PatchID, v)
			for _, c := range consumers {
				s.satisfy(c)
			}
		}
		s.pool.Add(rec)
	}
}

func (s *Scheduler) satisfy(n *node) {
	if n.waiting.Add(-1) == 0 {
		s.ready <- n
	}
}

func (s *Scheduler) fail(err error) {
	s.errMu.Lock()
	s.errs = append(s.errs, err)
	s.errMu.Unlock()
	s.failed.Store(true)
}

// Execute compiles and runs the task graph to completion, returning
// run statistics. It blocks until every task has executed (or a task
// failed, in which case the first error is returned).
func (s *Scheduler) Execute() (Stats, error) {
	t0 := time.Now()
	if err := s.compile(); err != nil {
		return Stats{}, err
	}
	total := len(s.nodes)
	s.ready = make(chan *node, total+1)
	s.remaining.Store(int64(total))
	if total == 0 {
		return Stats{}, nil
	}
	s.postExternals()
	// Seed initially-ready tasks.
	for _, n := range s.nodes {
		if n.waiting.Load() == 0 {
			s.ready <- n
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < s.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.workerLoop()
		}()
	}
	wg.Wait()

	st := s.stats
	st.LocalCommSeconds = float64(s.commNanos.Load()) / 1e9
	st.TaskSeconds = make(map[string]float64, len(s.taskNanos))
	s.timeMu.Lock()
	for name, ns := range s.taskNanos {
		st.TaskSeconds[name] = float64(ns) / 1e9
	}
	s.timeMu.Unlock()
	for _, slot := range s.gpus {
		if m := slot.dev.Makespan(); m > st.DeviceMakespan {
			st.DeviceMakespan = m
		}
		st.DevicePeakMem += slot.dev.PeakUsed()
	}
	if s.failed.Load() {
		// Abort hygiene: a failed timestep must not strand requests —
		// the exact leak class the paper's race produced. Unprocessed
		// pool records are drained (their slots reclaimed) and posted
		// receives that never matched are cancelled out of the
		// communicator.
		st.PoolDrained = int64(s.pool.Drain(nil))
		for _, rq := range s.recvReqs {
			if s.Comm.Cancel(rq) {
				st.RecvsCancelled++
			}
		}
	}
	st.CommExpired = atomic.LoadInt64(&s.stats.CommExpired)
	s.publishStats(st, time.Since(t0).Seconds())
	if s.failed.Load() {
		s.errMu.Lock()
		defer s.errMu.Unlock()
		return st, errors.Join(s.errs...)
	}
	return st, nil
}

// workerLoop is the per-thread scheduler body: prefer executing ready
// tasks; otherwise make MPI progress through the wait-free pool (each
// thread performs its own MPI — MPI_THREAD_MULTIPLE); otherwise yield.
func (s *Scheduler) workerLoop() {
	for {
		if s.remaining.Load() <= 0 || s.failed.Load() {
			return
		}
		select {
		case n := <-s.ready:
			s.runNode(n)
		default:
			t0 := time.Now()
			progressed := s.pool.ProcessReady()
			s.commNanos.Add(time.Since(t0).Nanoseconds())
			if progressed {
				atomic.AddInt64(&s.stats.MPIProcessed, 1)
			} else {
				runtime.Gosched()
			}
		}
	}
}

// chargeTask accumulates wall time against the task's name.
func (s *Scheduler) chargeTask(name string, start time.Time) {
	ns := time.Since(start).Nanoseconds()
	s.timeMu.Lock()
	s.taskNanos[name] += ns
	s.timeMu.Unlock()
}

// runNode executes one task (or one GPU stage) and propagates
// completions.
func (s *Scheduler) runNode(n *node) {
	defer s.chargeTask(n.task.Name, time.Now())
	ctx := &Context{Sched: s, Task: n.task}
	if n.task.GPU == nil {
		if err := n.task.Run(ctx); err != nil {
			s.fail(fmt.Errorf("task %v: %w", n.task, err))
			s.finishNode()
			return
		}
		atomic.AddInt64(&s.stats.TasksRun, 1)
		s.completeNode(n)
		return
	}
	// GPU task: advance one stage, then requeue — this is the
	// multi-stage queue architecture (H2D queue -> kernel queue -> D2H
	// queue) that keeps copies and kernels from distinct patches
	// overlapped on the device.
	slot := s.gpus[n.gpuIdx]
	if n.stream == nil {
		n.stream = slot.dev.NewStream()
	}
	ctx.Stream = n.stream
	ctx.Device = slot.dev
	ctx.GPUDW = slot.gdw
	var err error
	switch n.stage {
	case stageH2D:
		if n.task.GPU.H2D != nil {
			err = n.task.GPU.H2D(ctx)
		}
		n.stage = stageKernel
	case stageKernel:
		if n.task.GPU.Kernel != nil {
			err = n.task.GPU.Kernel(ctx)
		}
		n.stage = stageD2H
	case stageD2H:
		if n.task.GPU.D2H != nil {
			err = n.task.GPU.D2H(ctx)
		}
		if err == nil {
			atomic.AddInt64(&s.stats.TasksRun, 1)
			atomic.AddInt64(&s.stats.GPUTasksRun, 1)
			s.completeNode(n)
			return
		}
	}
	if err != nil {
		s.fail(fmt.Errorf("gpu task %v stage %d: %w", n.task, n.stage, err))
		s.finishNode()
		return
	}
	s.ready <- n
}

// completeNode marks a node done and releases its dependents.
func (s *Scheduler) completeNode(n *node) {
	for _, out := range n.outs {
		s.satisfy(out)
	}
	s.finishNode()
}

func (s *Scheduler) finishNode() {
	s.remaining.Add(-1)
}

// Pool exposes the scheduler's wait-free request pool (tests verify it
// drains).
func (s *Scheduler) Pool() *commpool.Pool { return s.pool }

// RunRanks drives one scheduler per rank concurrently — the whole-
// machine view, with rank r's scheduler owning the patches assigned to
// r. build is called once per rank to construct and populate that
// rank's scheduler; all schedulers then execute simultaneously so
// cross-rank sends and receives can rendezvous. The per-rank stats and
// the first error are returned.
func RunRanks(nRanks int, build func(rank int) (*Scheduler, error)) ([]Stats, error) {
	scheds := make([]*Scheduler, nRanks)
	for r := 0; r < nRanks; r++ {
		sc, err := build(r)
		if err != nil {
			return nil, fmt.Errorf("building rank %d: %w", r, err)
		}
		scheds[r] = sc
	}
	stats := make([]Stats, nRanks)
	errs := make([]error, nRanks)
	var wg sync.WaitGroup
	for r := 0; r < nRanks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			stats[r], errs[r] = scheds[r].Execute()
		}(r)
	}
	wg.Wait()
	return stats, errors.Join(errs...)
}

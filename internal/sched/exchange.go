package sched

import (
	"fmt"

	"github.com/uintah-repro/rmcrt/internal/dw"
	"github.com/uintah-repro/rmcrt/internal/grid"
)

// Cross-rank data exchange. Uintah's task graph compiles "requires"
// declarations whose producers live on other ranks into automatically
// generated MPI messages. This file provides that wiring for the two
// patterns the radiation solve needs:
//
//   - RegisterHaloExchange: neighbour exchange of a patch variable with
//     a ghost halo (the fine CFD mesh's ghost traffic);
//   - RegisterLevelGather: the all-to-all gather that gives every rank
//     a full copy of a level's variable (the coarse radiation mesh's
//     "infinite ghost cells" — the communication pattern whose volume
//     the multi-level algorithm exists to shrink).
//
// Both return the registered message counts so studies can compare the
// real traffic against perfmodel's estimates.

// ExchangeStats reports what an exchange registration will move.
type ExchangeStats struct {
	// SendTasks is the number of send-side tasks registered.
	SendTasks int
	// Recvs is the number of external receives posted.
	Recvs int
	// BytesOut is the total payload this rank will send.
	BytesOut int64
}

// tagFor builds a unique MPI tag for (tagBase, patch) pairs. Tags must
// be non-negative and unique per in-flight (source, label, patch).
func tagFor(tagBase, patchID int) int { return tagBase + patchID }

// RegisterHaloExchange wires the exchange of variable label on level
// li: every local patch's data is sent (whole patch) to each rank
// owning a patch within ghost cells of it, and matching external
// receives are posted for every remote patch within ghost cells of a
// local patch. The send task requires the variable locally, so it runs
// after the producer; receives complete dependent tasks through the
// wait-free pool.
//
// tagBase must leave room for the level's patch IDs and be distinct
// per (label, level) exchange.
func (s *Scheduler) RegisterHaloExchange(g *grid.Grid, li int, label string, ghost, tagBase int) ExchangeStats {
	lvl := g.Levels[li]
	var st ExchangeStats

	// Which ranks need my patch p? Those owning a patch q with
	// q.Grow(ghost) ∩ p ≠ ∅ (equivalently p.Grow(ghost) ∩ q ≠ ∅).
	for _, p := range lvl.Patches {
		if p.Rank != s.Rank {
			continue
		}
		p := p
		needed := map[int]bool{}
		grown := p.Cells.Grow(ghost).Intersect(lvl.IndexBox())
		for _, q := range lvl.Patches {
			if q.Rank == s.Rank {
				continue
			}
			if !q.Cells.Intersect(grown).Empty() {
				needed[q.Rank] = true
			}
		}
		if len(needed) == 0 {
			continue
		}
		dests := make([]int, 0, len(needed))
		for r := range needed {
			dests = append(dests, r)
		}
		st.SendTasks++
		st.BytesOut += int64(len(dests)) * int64(p.Cells.Volume()) * 8
		s.AddTask(&Task{
			Name:     fmt.Sprintf("send:%s", label),
			Patch:    p,
			Requires: []Dep{{Label: label, Level: li, Ghost: 0}},
			Run: func(c *Context) error {
				v, err := c.DW().GetCC(label, p.ID)
				if err != nil {
					return err
				}
				payload := dw.EncodeRegion(v, p.Cells)
				for _, r := range dests {
					s.Comm.Isend(s.Rank, r, tagFor(tagBase, p.ID), payload)
				}
				return nil
			},
		})
	}

	// Which remote patches do my patches need?
	posted := map[int]bool{}
	for _, p := range lvl.Patches {
		if p.Rank != s.Rank {
			continue
		}
		grown := p.Cells.Grow(ghost).Intersect(lvl.IndexBox())
		for _, q := range lvl.Patches {
			if q.Rank == s.Rank || posted[q.ID] {
				continue
			}
			if q.Cells.Intersect(grown).Empty() {
				continue
			}
			posted[q.ID] = true
			st.Recvs++
			s.AddExternalRecv(ExternalRecv{
				Label: label, PatchID: q.ID, Level: li,
				Region: q.Cells, Source: q.Rank, Tag: tagFor(tagBase, q.ID),
			})
		}
	}
	return st
}

// RegisterLevelGather wires the all-to-all replication of variable
// label on level li: every local patch's data goes to every other
// rank, and receives are posted for every remote patch — after which
// the whole level is locally gatherable (dw.GatherLevel). This is the
// coarse radiation mesh's communication pattern; applying it to a fine
// level reproduces the O(N²) single-level volume the paper abandoned.
func (s *Scheduler) RegisterLevelGather(g *grid.Grid, li int, label string, tagBase int) ExchangeStats {
	lvl := g.Levels[li]
	var st ExchangeStats
	nRanks := s.Comm.Size()

	for _, p := range lvl.Patches {
		if p.Rank != s.Rank {
			continue
		}
		p := p
		st.SendTasks++
		st.BytesOut += int64(nRanks-1) * int64(p.Cells.Volume()) * 8
		s.AddTask(&Task{
			Name:     fmt.Sprintf("gather-send:%s", label),
			Patch:    p,
			Requires: []Dep{{Label: label, Level: li, Ghost: 0}},
			Run: func(c *Context) error {
				v, err := c.DW().GetCC(label, p.ID)
				if err != nil {
					return err
				}
				payload := dw.EncodeRegion(v, p.Cells)
				for r := 0; r < nRanks; r++ {
					if r == s.Rank {
						continue
					}
					s.Comm.Isend(s.Rank, r, tagFor(tagBase, p.ID), payload)
				}
				return nil
			},
		})
	}
	for _, q := range lvl.Patches {
		if q.Rank == s.Rank {
			continue
		}
		st.Recvs++
		s.AddExternalRecv(ExternalRecv{
			Label: label, PatchID: q.ID, Level: li,
			Region: q.Cells, Source: q.Rank, Tag: tagFor(tagBase, q.ID),
		})
	}
	return st
}

package sched

import (
	"fmt"
	"strings"
	"testing"

	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/metrics"
)

// buildDiamond adds a produce → consume pair per patch (the
// sched_test.go dependency shape) and one external receive.
func buildDiamond(t *testing.T, s *Scheduler, g *grid.Grid) (nTasks int) {
	t.Helper()
	for _, p := range g.Levels[0].Patches {
		p := p
		s.AddTask(&Task{
			Name: "produce", Patch: p,
			Computes: []Compute{{Label: "a", Level: 0}},
			Run: func(c *Context) error {
				v := field.NewCC[float64](p.Cells)
				c.DW().PutCC("a", p.ID, v)
				return nil
			},
		})
		s.AddTask(&Task{
			Name: "consume", Patch: p,
			Requires: []Dep{{Label: "a", Level: 0}},
			Computes: []Compute{{Label: "b", Level: 0}},
			Run:      func(c *Context) error { return nil },
		})
		nTasks += 2
	}
	return nTasks
}

func TestDOTContainsEveryTaskAndEdge(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	n := buildDiamond(t, s, g)
	dot, err := s.DOT()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dot, "digraph taskgraph {") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Fatalf("not a DOT digraph:\n%s", dot)
	}
	// Every task node renders with its String() label as an ellipse
	// (no GPU tasks here).
	for _, p := range g.Levels[0].Patches {
		for _, name := range []string{"produce", "consume"} {
			label := fmt.Sprintf("%q", fmt.Sprintf("%s@p%d", name, p.ID))
			if !strings.Contains(dot, label+" shape=ellipse") {
				t.Errorf("DOT missing node %s:\n%s", label, dot)
			}
		}
	}
	if got := strings.Count(dot, "shape=ellipse"); got != n {
		t.Errorf("DOT has %d task nodes, want %d", got, n)
	}
	// Every produce→consume dependency is one edge; each patch's
	// produce also feeds neighbouring consumes? No ghost here, so it is
	// exactly one edge per patch pair: count ->-edges.
	edges := strings.Count(dot, "->")
	if want := len(g.Levels[0].Patches); edges != want {
		t.Errorf("DOT has %d edges, want %d:\n%s", edges, want, dot)
	}
}

func TestDOTRendersExternalRecvAndGPUShapes(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	p := g.Levels[0].Patches[0]
	s.AddTask(&Task{
		Name: "use", Patch: p,
		Requires: []Dep{{Label: "x", Level: 0}},
		Computes: []Compute{{Label: "y", Level: 0}},
		Run:      func(c *Context) error { return nil },
	})
	s.AddExternalRecv(ExternalRecv{Label: "x", PatchID: p.ID, Level: 0, Region: p.Cells, Source: 0, Tag: 7})
	dot, err := s.DOT()
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("recv x p%d from rank 0", p.ID)
	if !strings.Contains(dot, want) {
		t.Errorf("DOT missing external receive %q:\n%s", want, dot)
	}
	if !strings.Contains(dot, "style=dashed") {
		t.Errorf("external receive not dashed:\n%s", dot)
	}
}

// TestSchedulerPublishesMetrics: the observability hook feeds task and
// communication counters into a shared registry.
func TestSchedulerPublishesMetrics(t *testing.T) {
	g := testGrid(t)
	s := newSched(t, g)
	reg := metrics.NewRegistry()
	s.PublishMetrics(reg)
	n := buildDiamond(t, s, g)
	if _, err := s.Execute(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("sched_tasks_run_total", "").Value(); got != int64(n) {
		t.Errorf("sched_tasks_run_total = %d, want %d", got, n)
	}
	if got := reg.Counter("sched_executes_total", "").Value(); got != 1 {
		t.Errorf("sched_executes_total = %d, want 1", got)
	}
	if got := reg.Histogram("sched_execute_seconds", "", metrics.DefBuckets).Count(); got != 1 {
		t.Errorf("sched_execute_seconds count = %d, want 1", got)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "commpool_records_added_total") {
		t.Errorf("comm pool hook not registered:\n%s", b.String())
	}
}

// Package sim is the discrete-event strong-scaling simulator that
// regenerates the paper's Figures 2 and 3 and Table I. Running 16,384
// GPUs is not possible in this environment; what *is* possible — and
// what the paper itself does when reasoning about scalability — is to
// execute the algorithm's per-timestep schedule against the machine
// model: per-node GPU pipelines (simulated with the internal/gpu
// device timeline: dual copy engines, kernel serialization, stream
// overlap) plus the communication model of internal/perfmodel.
//
// The simulator executes the schedule of the *maximum-loaded node*
// (the one holding ceil(patches/P) patches), which determines the
// timestep duration for a bulk-synchronous radiation solve.
package sim

import (
	"fmt"
	"math"

	"github.com/uintah-repro/rmcrt/internal/gpu"
	"github.com/uintah-repro/rmcrt/internal/perfmodel"
)

// Point is one measurement of the strong-scaling study.
type Point struct {
	// GPUs is the node count (1 GPU per node on Titan).
	GPUs int
	// PatchesPerGPU is the max per-node patch load.
	PatchesPerGPU int
	// CommSeconds is the per-timestep communication time (network +
	// local posting/processing).
	CommSeconds float64
	// GPUSeconds is the simulated device pipeline makespan.
	GPUSeconds float64
	// TotalSeconds is the modeled time per radiation timestep.
	TotalSeconds float64
}

// Series is a strong-scaling curve for one patch size.
type Series struct {
	Problem perfmodel.Problem
	Points  []Point
}

// Config controls a simulation run.
type Config struct {
	Machine perfmodel.Machine
	// WaitFreePool selects the improved communication infrastructure
	// (contribution iii); false reproduces the "before" curves.
	WaitFreePool bool
	// CPU runs the multi-level RMCRT on the node's CPU cores instead of
	// its GPU — the configuration of the paper's predecessor result [5]
	// (strong scaling to 256K CPU cores) and of Table I's runs.
	CPU bool
}

// DefaultConfig returns Titan with the improved infrastructure.
func DefaultConfig() Config {
	return Config{Machine: perfmodel.Titan(), WaitFreePool: true}
}

// SimulateNode runs the per-node GPU pipeline for nPatches patches of
// problem p on a fresh simulated device and returns its makespan: the
// shared coarse-level upload (once — the GPU DataWarehouse level
// database), then per-patch streams of H2D window copy, RMCRT kernel
// and divQ copy-back, overlapped exactly as the runtime overlaps them.
func SimulateNode(cfg Config, p perfmodel.Problem, nPatches int) (float64, error) {
	m := cfg.Machine
	dev := gpu.NewDevice(m.GPUMemory, gpu.CostModel{
		PCIeBandwidth: m.PCIeBandwidth,
		PCIeLatency:   m.PCIeLatency,
		KernelLaunch:  m.KernelLaunch,
		Throughput:    m.GPUThroughput,
	})
	// Shared coarse upload once per level database residency. The
	// allocation must fit alongside the patch windows — the device
	// enforces the 6 GB wall.
	coarse, err := dev.Alloc(p.CoarseBytes() * int64(p.Props))
	if err != nil {
		return 0, fmt.Errorf("sim: coarse level database: %w", err)
	}
	defer dev.Free(coarse)
	s0 := dev.NewStream()
	s0.H2D(p.CoarseBytes()*int64(p.Props), "coarse level db")

	// Small kernels under-fill the device; charge the occupancy penalty.
	work := p.KernelWork() / m.GPUEfficiency(p.CellsPerPatch())
	// The device runs a bounded number of resident patch buffers at a
	// time (Uintah's over-decomposition in flight); memory for each is
	// allocated and released around its stream.
	for i := 0; i < nPatches; i++ {
		buf, err := dev.Alloc(p.FineWindowBytes() + p.PatchOutBytes())
		if err != nil {
			return 0, fmt.Errorf("sim: patch %d buffers: %w", i, err)
		}
		s := dev.NewStream()
		s.H2D(p.FineWindowBytes(), "patch in")
		s.Launch(work, "rmcrt", nil)
		s.D2H(p.PatchOutBytes(), "divq out")
		dev.Free(buf)
	}
	return dev.Makespan(), nil
}

// SimulateNodeCPU models the per-node compute time of the CPU
// implementation: the node's cores split the patch kernels evenly (the
// hybrid scheduler keeps all 16 threads busy when patches/node >=
// cores), with no PCIe stage and no occupancy penalty.
func SimulateNodeCPU(cfg Config, p perfmodel.Problem, nPatches int) float64 {
	m := cfg.Machine
	work := p.KernelWork() * float64(nPatches)
	cores := float64(m.CoresPerNode)
	if np := float64(nPatches); np < cores {
		// Fewer patches than cores: idle cores cannot help (a patch is
		// the unit of task parallelism).
		cores = np
	}
	return work / (cores * m.CPUThroughput)
}

// commCost picks the infrastructure constants for the configuration.
func commCost(cfg Config) perfmodel.CommCost {
	if cfg.WaitFreePool {
		return perfmodel.WaitFreeCost(cfg.Machine.CoresPerNode)
	}
	return perfmodel.LegacyCost(cfg.Machine.CoresPerNode)
}

// Simulate computes one scaling point: comm + max-node GPU pipeline.
func Simulate(cfg Config, p perfmodel.Problem, gpus int) (Point, error) {
	if err := p.Validate(); err != nil {
		return Point{}, err
	}
	if gpus < 1 {
		return Point{}, fmt.Errorf("sim: need at least one GPU")
	}
	patches := p.FinePatches()
	perNode := int(math.Ceil(float64(patches) / float64(gpus)))
	if perNode < 1 {
		perNode = 1
	}

	est := p.CoarseGather(gpus).Total(p.HaloExchange(gpus))
	comm := cfg.Machine.NetworkTime(est) + commCost(cfg).LocalTime(est)

	var gpuTime float64
	var err error
	if cfg.CPU {
		gpuTime = SimulateNodeCPU(cfg, p, perNode)
	} else {
		gpuTime, err = SimulateNode(cfg, p, perNode)
	}
	if err != nil {
		return Point{}, err
	}
	return Point{
		GPUs:          gpus,
		PatchesPerGPU: perNode,
		CommSeconds:   comm,
		GPUSeconds:    gpuTime,
		TotalSeconds:  comm + gpuTime,
	}, nil
}

// StrongScaling sweeps GPU counts for one problem.
func StrongScaling(cfg Config, p perfmodel.Problem, gpuCounts []int) (Series, error) {
	s := Series{Problem: p}
	for _, g := range gpuCounts {
		pt, err := Simulate(cfg, p, g)
		if err != nil {
			return s, err
		}
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

// Efficiency returns the parallel efficiency between two points of a
// series per the paper's equation (3): E = T(P1)·P1 / (T(P2)·P2).
func Efficiency(a, b Point) float64 {
	return a.TotalSeconds * float64(a.GPUs) / (b.TotalSeconds * float64(b.GPUs))
}

// Speedup returns T(a)/T(b).
func Speedup(a, b Point) float64 { return a.TotalSeconds / b.TotalSeconds }

// PowersOf2 returns {from, 2from, ..., to} inclusive. from must be
// positive: doubling never advances 0 and never moves a negative value
// toward to, so non-positive starts return nil instead of spinning.
func PowersOf2(from, to int) []int {
	if from <= 0 {
		return nil
	}
	var out []int
	for g := from; g <= to; g *= 2 {
		out = append(out, g)
	}
	return out
}

// TableIRow is one column of the paper's Table I.
type TableIRow struct {
	Nodes         int
	Before, After float64
	Speedup       float64
}

// TableI regenerates the local-communication comparison of Table I /
// Figure 1: the CPU implementation of the LARGE benchmark (512³+128³,
// 2-level, 262k total patches → 8³ fine patches) on 512…16384 nodes,
// before (mutex vector + Testsome) and after (wait-free pool) the
// infrastructure improvements.
func TableI(m perfmodel.Machine, nodes []int) []TableIRow {
	p := perfmodel.Large(8) // 8³ patches: 262,144 fine patches as in §IV-B
	var rows []TableIRow
	for _, n := range nodes {
		est := p.CoarseGather(n).Total(p.HaloExchange(n))
		before := perfmodel.LegacyCost(m.CoresPerNode).LocalTime(est)
		after := perfmodel.WaitFreeCost(m.CoresPerNode).LocalTime(est)
		rows = append(rows, TableIRow{
			Nodes: n, Before: before, After: after, Speedup: before / after,
		})
	}
	return rows
}

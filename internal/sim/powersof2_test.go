package sim

import "testing"

// PowersOf2 with a non-positive start used to loop forever (0 doubles
// to 0; negatives never reach to). It must return nil instead.
func TestPowersOf2NonPositiveFrom(t *testing.T) {
	for _, from := range []int{0, -1, -16} {
		if got := PowersOf2(from, 1024); got != nil {
			t.Errorf("PowersOf2(%d, 1024) = %v, want nil", from, got)
		}
	}
	// An empty range is fine and empty, not an error.
	if got := PowersOf2(256, 128); got != nil {
		t.Errorf("PowersOf2(256, 128) = %v, want nil", got)
	}
	// The guard must not disturb the normal case.
	if got := PowersOf2(1, 8); len(got) != 4 || got[0] != 1 || got[3] != 8 {
		t.Errorf("PowersOf2(1, 8) = %v, want [1 2 4 8]", got)
	}
}

package sim

import (
	"math"
	"testing"

	"github.com/uintah-repro/rmcrt/internal/perfmodel"
)

func TestPowersOf2(t *testing.T) {
	got := PowersOf2(16, 128)
	want := []int{16, 32, 64, 128}
	if len(got) != len(want) {
		t.Fatalf("PowersOf2 = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PowersOf2 = %v", got)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Simulate(cfg, perfmodel.Problem{}, 16); err == nil {
		t.Error("invalid problem accepted")
	}
	if _, err := Simulate(cfg, perfmodel.Medium(16), 0); err == nil {
		t.Error("zero GPUs accepted")
	}
}

func TestSimulatePointFields(t *testing.T) {
	cfg := DefaultConfig()
	pt, err := Simulate(cfg, perfmodel.Medium(16), 64)
	if err != nil {
		t.Fatal(err)
	}
	if pt.GPUs != 64 {
		t.Errorf("GPUs = %d", pt.GPUs)
	}
	if pt.PatchesPerGPU != 64 { // 4096 patches / 64
		t.Errorf("PatchesPerGPU = %d, want 64", pt.PatchesPerGPU)
	}
	if pt.TotalSeconds <= 0 || pt.TotalSeconds != pt.CommSeconds+pt.GPUSeconds {
		t.Errorf("inconsistent point: %+v", pt)
	}
}

// TestFigure2Shape asserts the paper's qualitative findings for the
// MEDIUM benchmark: (1) larger patches are faster at low GPU counts
// ("using larger patches provides more work per GPU and yields a more
// significant speedup"); (2) 16³ keeps strong-scaling across the full
// range; (3) a patch size stops scaling once GPUs exceed its patch
// count.
func TestFigure2Shape(t *testing.T) {
	cfg := DefaultConfig()
	counts := PowersOf2(16, 1024)
	series := map[int]Series{}
	for _, pn := range []int{16, 32, 64} {
		s, err := StrongScaling(cfg, perfmodel.Medium(pn), counts)
		if err != nil {
			t.Fatal(err)
		}
		series[pn] = s
	}
	// (1) At 16 GPUs: t(64³) < t(32³) < t(16³).
	t16 := series[16].Points[0].TotalSeconds
	t32 := series[32].Points[0].TotalSeconds
	t64 := series[64].Points[0].TotalSeconds
	if !(t64 < t32 && t32 < t16) {
		t.Errorf("at 16 GPUs want t(64³)<t(32³)<t(16³), got %v %v %v", t64, t32, t16)
	}
	// (2) 16³ strong-scales: monotone decreasing, good efficiency to 1024.
	pts := series[16].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].TotalSeconds >= pts[i-1].TotalSeconds {
			t.Errorf("16³ stopped scaling at %d GPUs", pts[i].GPUs)
		}
	}
	if eff := Efficiency(pts[0], pts[len(pts)-1]); eff < 0.7 {
		t.Errorf("16³ efficiency 16->1024 GPUs = %.2f, want >= 0.7", eff)
	}
	// (3) 64³ has 64 patches: beyond 64 GPUs the time flattens.
	p64 := series[64].Points
	var at64, at512 float64
	for _, pt := range p64 {
		if pt.GPUs == 64 {
			at64 = pt.TotalSeconds
		}
		if pt.GPUs == 512 {
			at512 = pt.TotalSeconds
		}
	}
	if math.Abs(at512-at64)/at64 > 0.05 {
		t.Errorf("64³ should flatten past 64 GPUs: t(64)=%v t(512)=%v", at64, at512)
	}
}

// TestFigure3Efficiencies asserts the paper's headline numbers for the
// LARGE benchmark with 16³ patches: "96% going from 4096 to 8192 GPUs,
// and 89% going from 4096 to 16,384 GPUs". The model must land within
// a few points of both.
func TestFigure3Efficiencies(t *testing.T) {
	cfg := DefaultConfig()
	s, err := StrongScaling(cfg, perfmodel.Large(16), []int{4096, 8192, 16384})
	if err != nil {
		t.Fatal(err)
	}
	e8k := Efficiency(s.Points[0], s.Points[1])
	e16k := Efficiency(s.Points[0], s.Points[2])
	if e8k < 0.90 || e8k > 1.0 {
		t.Errorf("efficiency 4096->8192 = %.3f, paper reports 0.96", e8k)
	}
	if e16k < 0.82 || e16k > 0.97 {
		t.Errorf("efficiency 4096->16384 = %.3f, paper reports 0.89", e16k)
	}
	if !(e16k < e8k) {
		t.Errorf("efficiency must decay with scale: %v %v", e8k, e16k)
	}
}

// TestFigure3FullRange: the LARGE 16³ curve scales 256 -> 16384 GPUs
// monotonically — the paper's headline result.
func TestFigure3FullRange(t *testing.T) {
	cfg := DefaultConfig()
	s, err := StrongScaling(cfg, perfmodel.Large(16), PowersOf2(256, 16384))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].TotalSeconds >= s.Points[i-1].TotalSeconds {
			t.Errorf("large 16³ stopped scaling at %d GPUs", s.Points[i].GPUs)
		}
	}
	// Speedup 256 -> 16384 (64x more GPUs) should be substantial.
	sp := Speedup(s.Points[0], s.Points[len(s.Points)-1])
	if sp < 40 {
		t.Errorf("speedup 256->16384 = %.1f, want >= 40 (of ideal 64)", sp)
	}
}

// TestTableIShape asserts the Table I reproduction: before/after times
// decreasing in node count, speedups within the paper's 2.3-4.4x band,
// largest at 512 nodes, and the 512-node and 16k-node rows near the
// published values.
func TestTableIShape(t *testing.T) {
	nodes := []int{512, 1024, 2048, 4096, 8192, 16384}
	rows := TableI(perfmodel.Titan(), nodes)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Speedup < 2.0 || r.Speedup > 5.0 {
			t.Errorf("nodes %d: speedup %.2f outside 2-5x band", r.Nodes, r.Speedup)
		}
		if r.After >= r.Before {
			t.Errorf("nodes %d: after (%.3f) not faster than before (%.3f)", r.Nodes, r.After, r.Before)
		}
		if i > 0 {
			if r.Before >= rows[i-1].Before || r.After >= rows[i-1].After {
				t.Errorf("times should decrease with node count at row %d", i)
			}
		}
	}
	if rows[0].Speedup <= rows[2].Speedup {
		t.Errorf("speedup should be largest at 512 nodes (longest queues): %v", rows)
	}
	// Calibration anchors: paper's 512-node row is 6.25 -> 1.42 s.
	if math.Abs(rows[0].Before-6.25) > 1.5 {
		t.Errorf("before(512) = %.2f, paper 6.25", rows[0].Before)
	}
	if math.Abs(rows[0].After-1.42) > 0.4 {
		t.Errorf("after(512) = %.2f, paper 1.42", rows[0].After)
	}
	// And the 16k-node row: 0.73 -> 0.23 s.
	last := rows[len(rows)-1]
	if math.Abs(last.Before-0.73) > 0.25 || math.Abs(last.After-0.23) > 0.1 {
		t.Errorf("16k row = %.2f/%.2f, paper 0.73/0.23", last.Before, last.After)
	}
}

// TestLegacyInfrastructureSlower: running the whole scaling study with
// the pre-improvement communication layer must be slower at every point
// — the motivation for contribution (iii).
func TestLegacyInfrastructureSlower(t *testing.T) {
	good := DefaultConfig()
	bad := DefaultConfig()
	bad.WaitFreePool = false
	counts := []int{512, 4096, 16384}
	sGood, err := StrongScaling(good, perfmodel.Large(16), counts)
	if err != nil {
		t.Fatal(err)
	}
	sBad, err := StrongScaling(bad, perfmodel.Large(16), counts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if sBad.Points[i].TotalSeconds <= sGood.Points[i].TotalSeconds {
			t.Errorf("legacy not slower at %d GPUs", counts[i])
		}
	}
}

// TestDevicePipelineOverlap: the simulated node pipeline must be faster
// than the serial sum of its parts (copies overlap kernels via the two
// copy engines and streams) but no faster than the kernel-only time.
func TestDevicePipelineOverlap(t *testing.T) {
	cfg := DefaultConfig()
	p := perfmodel.Medium(32)
	n := 16
	makespan, err := SimulateNode(cfg, p, n)
	if err != nil {
		t.Fatal(err)
	}
	m := cfg.Machine
	kernelOnly := float64(n) * (p.KernelWork()/m.GPUEfficiency(p.CellsPerPatch())/m.GPUThroughput + m.KernelLaunch)
	transfers := float64(n) * (float64(p.FineWindowBytes()+p.PatchOutBytes())/m.PCIeBandwidth + 2*m.PCIeLatency)
	serial := kernelOnly + transfers
	if makespan >= serial {
		t.Errorf("no overlap: makespan %v >= serial %v", makespan, serial)
	}
	if makespan < kernelOnly {
		t.Errorf("makespan %v below kernel-only bound %v", makespan, kernelOnly)
	}
}

// TestNodeMemoryFitsK20X: the per-node working set of every studied
// configuration fits the 6 GB device (the level database makes this
// possible); the simulator would error otherwise.
func TestNodeMemoryFitsK20X(t *testing.T) {
	cfg := DefaultConfig()
	for _, pn := range []int{16, 32, 64} {
		for _, gpus := range []int{256, 16384} {
			if _, err := Simulate(cfg, perfmodel.Large(pn), gpus); err != nil {
				t.Errorf("large %d³ at %d GPUs: %v", pn, gpus, err)
			}
		}
	}
}

// TestCPUModeScaling reproduces the predecessor CPU result's shape [5]:
// the CPU implementation strong-scales across the studied range (more
// patches per node than cores for most of it), and one node's GPU
// out-traces its 16 Opterons on big patches — the motivation for the
// GPU port.
func TestCPUModeScaling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CPU = true
	s, err := StrongScaling(cfg, perfmodel.Large(16), PowersOf2(512, 16384))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].TotalSeconds >= s.Points[i-1].TotalSeconds {
			t.Errorf("CPU curve stopped scaling at %d nodes", s.Points[i].GPUs)
		}
	}
	// GPU vs CPU on one node with large patches: the K20X wins.
	gcfg := DefaultConfig()
	gpuT, err := SimulateNode(gcfg, perfmodel.Large(64), 8)
	if err != nil {
		t.Fatal(err)
	}
	cpuT := SimulateNodeCPU(cfg, perfmodel.Large(64), 8)
	if gpuT >= cpuT {
		t.Errorf("GPU node time %v should beat CPU node time %v on 64³ patches", gpuT, cpuT)
	}
	// And the ratio should be meaningful (>1.5x) but not absurd (<100x),
	// consistent with early-2010s GPU/CPU-node comparisons.
	ratio := cpuT / gpuT
	if ratio < 1.5 || ratio > 100 {
		t.Errorf("GPU speedup over a full CPU node = %.1fx, outside plausibility band", ratio)
	}
}

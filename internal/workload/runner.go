package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/uintah-repro/rmcrt/internal/service"
)

// RunConfig configures one run of a plan against a live server.
type RunConfig struct {
	// Target is the server base URL (rmcrtd or rmcrtrouter — both
	// speak the same /v1 job API).
	Target string
	// ASAP ignores the plan's timeline and issues every client's
	// submissions back-to-back: as-fast-as-possible replay.
	ASAP bool
	// PollInterval is the job-status poll period (default 5ms).
	PollInterval time.Duration
	// JobTimeout bounds how long the runner waits for one accepted job
	// to turn terminal (default 60s).
	JobTimeout time.Duration
	// Client is the HTTP client (default: http.DefaultClient with a
	// 30s request timeout clone).
	Client *http.Client
}

func (c RunConfig) withDefaults() RunConfig {
	if c.PollInterval <= 0 {
		c.PollInterval = 5 * time.Millisecond
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

// jobStatus is the subset of the daemon/router job snapshot the runner
// decodes — both serving planes emit these fields.
type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// Run executes the plan against cfg.Target and aggregates the
// per-class report. Each client instance runs as one goroutine issuing
// its submissions in plan order: open-loop clients fire at their
// planned offsets, closed-loop clients treat gaps as think time and
// bound their outstanding jobs, asap clients (or ASAP replay) issue
// back-to-back. ctx cancels the whole run.
func Run(ctx context.Context, plan *Plan, cfg RunConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	if len(plan.Subs) == 0 {
		return nil, fmt.Errorf("workload: empty plan")
	}

	modes := make(map[string]PlanClient, len(plan.Clients))
	for _, pc := range plan.Clients {
		modes[pc.Name] = pc
	}
	byClient := make(map[string][]Submission)
	var order []string
	for _, sub := range plan.Subs {
		if _, ok := byClient[sub.Client]; !ok {
			order = append(order, sub.Client)
		}
		byClient[sub.Client] = append(byClient[sub.Client], sub)
	}

	report := newReport(plan)
	var mu sync.Mutex
	record := func(class string, o Outcome, latencyMs float64, retryHinted bool) {
		mu.Lock()
		report.record(class, o, latencyMs, retryHinted)
		mu.Unlock()
	}

	before, berr := scrapeCounters(ctx, cfg, plan)
	start := time.Now()
	var wg sync.WaitGroup
	for _, name := range order {
		subs := byClient[name]
		pc, ok := modes[name]
		if !ok {
			pc = PlanClient{Name: name, Mode: ModeOpen, Inflight: 1}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			runClient(ctx, cfg, pc, subs, start, record)
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	if after, aerr := scrapeCounters(ctx, cfg, plan); berr == nil && aerr == nil {
		report.Counters = counterDelta(before, after)
	}
	report.Target = cfg.Target
	report.finalize(wall)
	return report, ctx.Err()
}

// runClient issues one client instance's submissions in order.
func runClient(ctx context.Context, cfg RunConfig, pc PlanClient, subs []Submission, start time.Time, record func(string, Outcome, float64, bool)) {
	mode := pc.Mode
	if cfg.ASAP {
		mode = ModeASAP
	}
	inflight := pc.Inflight
	if inflight < 1 {
		inflight = 1
	}
	// Open-loop clients do not bound outstanding jobs; model that as a
	// slot per submission.
	if mode == ModeOpen {
		inflight = len(subs)
	}
	slots := make(chan struct{}, inflight)
	for i := 0; i < inflight; i++ {
		slots <- struct{}{}
	}
	var wg sync.WaitGroup
	prev := time.Duration(0)
	for _, sub := range subs {
		switch mode {
		case ModeOpen:
			// Fire at the planned absolute offset.
			if !sleepUntil(ctx, start.Add(sub.At)) {
				record(sub.Class, OutcomeTransport, 0, false)
				continue
			}
		case ModeClosed:
			// The planned gap is think time before the next issue; the
			// slot wait below applies the inflight bound.
			gap := sub.At - prev
			prev = sub.At
			if !sleepFor(ctx, gap) {
				record(sub.Class, OutcomeTransport, 0, false)
				continue
			}
		}
		select {
		case <-slots:
		case <-ctx.Done():
			record(sub.Class, OutcomeTransport, 0, false)
			continue
		}
		wg.Add(1)
		go func(sub Submission) {
			defer wg.Done()
			defer func() { slots <- struct{}{} }()
			o, latency, hinted := issue(ctx, cfg, sub)
			record(sub.Class, o, latency, hinted)
		}(sub)
	}
	wg.Wait()
}

func sleepUntil(ctx context.Context, t time.Time) bool {
	return sleepFor(ctx, time.Until(t))
}

func sleepFor(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// issue submits one job and waits for its terminal state, classifying
// the outcome. Latency is submit→observed-terminal in milliseconds.
// The third return marks a 429 that carried a Retry-After hint.
func issue(ctx context.Context, cfg RunConfig, sub Submission) (Outcome, float64, bool) {
	body, err := json.Marshal(sub.Spec)
	if err != nil {
		return OutcomeRejected, 0, false
	}
	submitAt := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.Target+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return OutcomeTransport, 0, false
	}
	req.Header.Set("Content-Type", "application/json")
	// Identify ourselves so per-client admission keys on this client
	// instance, and attach the planned deadline budget when one is set.
	req.Header.Set(service.ClientIDHeader, sub.Client)
	if sub.DeadlineMs > 0 {
		req.Header.Set(service.DeadlineHeader, strconv.Itoa(sub.DeadlineMs))
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return OutcomeTransport, 0, false
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		// Both admission paths answer 429; the body says which. A
		// rate-limited client was personally over allowance — a
		// queue-full one just hit a busy server.
		hinted := resp.Header.Get("Retry-After") != ""
		if strings.Contains(string(raw), "rate limited") {
			return OutcomeRateLimited, 0, hinted
		}
		return OutcomeQueueFull, 0, hinted
	}
	var st jobStatus
	decodeErr := json.Unmarshal(raw, &st)
	switch {
	case resp.StatusCode >= 400:
		return OutcomeRejected, 0, false
	case decodeErr != nil || st.ID == "":
		return OutcomeTransport, 0, false
	}
	if terminalState(st.State) {
		// Cache hits come back already terminal.
		return classify(st), time.Since(submitAt).Seconds() * 1e3, false
	}

	deadline := time.NewTimer(cfg.JobTimeout)
	defer deadline.Stop()
	tick := time.NewTicker(cfg.PollInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return OutcomeTransport, 0, false
		case <-deadline.C:
			return OutcomeTimeout, 0, false
		case <-tick.C:
		}
		cur, err := pollJob(ctx, cfg, st.ID)
		if err != nil {
			continue // transient scrape failure: keep polling until the budget
		}
		if terminalState(cur.State) {
			return classify(cur), time.Since(submitAt).Seconds() * 1e3, false
		}
	}
}

func pollJob(ctx context.Context, cfg RunConfig, id string) (jobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.Target+"/v1/jobs/"+id, nil)
	if err != nil {
		return jobStatus{}, err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return jobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobStatus{}, fmt.Errorf("workload: job status %d", resp.StatusCode)
	}
	var st jobStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return jobStatus{}, err
	}
	return st, nil
}

func terminalState(s string) bool {
	return s == "done" || s == "failed" || s == "cancelled"
}

func classify(st jobStatus) Outcome {
	switch st.State {
	case "done":
		return OutcomeDone
	case "cancelled":
		return OutcomeCancelled
	}
	// Deadline errors cross HTTP as strings; match textually like the
	// cluster router does.
	if strings.Contains(st.Error, "deadline exceeded") {
		return OutcomeDeadline
	}
	return OutcomeFailed
}

// scrapeCounters snapshots the target's counter families.
func scrapeCounters(ctx context.Context, cfg RunConfig, _ *Plan) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.Target+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("workload: metrics status %d", resp.StatusCode)
	}
	return parseCounters(io.LimitReader(resp.Body, 4<<20))
}

package workload

import (
	"sort"
	"time"

	"github.com/uintah-repro/rmcrt/internal/mathutil"
	"github.com/uintah-repro/rmcrt/internal/service"
)

// Submission is one planned request: what to submit, when (relative to
// run start), and on whose behalf.
type Submission struct {
	// Index is the submission's position in the merged timeline,
	// starting at 0.
	Index int `json:"index"`
	// At is the planned offset from run start. Closed-loop clients
	// treat it as accumulated think time rather than an absolute
	// schedule.
	At time.Duration `json:"at_ns"`
	// Client is the emitting client instance, "<group>/<i>".
	Client string `json:"client"`
	// Class mirrors Spec.Class (denormalized for report grouping).
	Class string `json:"class"`
	// Spec is the solve request body.
	Spec service.Spec `json:"spec"`
	// DeadlineMs, when positive, rides along as the X-Job-Deadline-Ms
	// header: the job's remaining-time budget at submission.
	DeadlineMs int `json:"deadline_ms,omitempty"`
}

// PlanClient records one client instance's run-time loop behavior —
// the part of the client spec the runner still needs after generation.
type PlanClient struct {
	Name string `json:"name"`
	// Mode is open/closed/asap (see the Mode* constants).
	Mode string `json:"mode"`
	// Inflight bounds outstanding submissions for closed/asap clients.
	Inflight int `json:"inflight"`
}

// Plan is a fully materialized workload: the exact submissions a run
// will issue, in timeline order. Generate is a pure function of
// (workload, seed), which is what makes the recorded trace — the
// serialized plan — byte-identical across runs and machines.
type Plan struct {
	// Workload is the generating spec's name.
	Workload string `json:"workload"`
	// Seed is the generator seed.
	Seed uint64 `json:"seed"`
	// Clients lists every client instance in generation order.
	Clients []PlanClient `json:"clients"`
	// Subs is the merged submission timeline.
	Subs []Submission `json:"subs"`
}

// Generate materializes the workload under seed. Every client instance
// samples from its own counter-based stream
// (mathutil.NewStream(seed, instanceIndex+1)), so the plan does not
// depend on map order, scheduling, or GOMAXPROCS; the merged timeline
// is sorted by (At, client index, per-client order) with a stable
// sort, which is a total order, so ties break deterministically too.
func Generate(w Spec, seed uint64) (*Plan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	plan := &Plan{Workload: w.Name, Seed: seed, Subs: make([]Submission, 0, w.TotalJobs())}

	type tagged struct {
		sub      Submission
		instance int
		seq      int
	}
	var all []tagged
	instance := 0
	for _, group := range w.Clients {
		g := group.normalized()
		for i := 0; i < g.Count; i++ {
			instance++
			rng := mathutil.NewStream(seed, uint64(instance))
			name := g.Name
			if g.Count > 1 {
				name = fmtClient(g.Name, i)
			}
			plan.Clients = append(plan.Clients, PlanClient{Name: name, Mode: g.Mode, Inflight: g.Inflight})
			at := time.Duration(0)
			for j := 0; j < g.Jobs; j++ {
				if g.Mode != ModeASAP {
					at += time.Duration(g.Arrival.gapSeconds(rng) * float64(time.Second))
				}
				spec := sampleSpec(g, rng, j)
				all = append(all, tagged{
					sub:      Submission{At: at, Client: name, Class: spec.Class, Spec: spec, DeadlineMs: g.DeadlineMs},
					instance: instance,
					seq:      j,
				})
			}
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].sub.At != all[b].sub.At {
			return all[a].sub.At < all[b].sub.At
		}
		if all[a].instance != all[b].instance {
			return all[a].instance < all[b].instance
		}
		return all[a].seq < all[b].seq
	})
	for i, t := range all {
		t.sub.Index = i
		plan.Subs = append(plan.Subs, t.sub)
	}
	return plan, nil
}

func fmtClient(name string, i int) string {
	// Small and allocation-cheap; instances are "<group>/<i>".
	const digits = "0123456789"
	if i < 10 {
		return name + "/" + digits[i:i+1]
	}
	return name + "/" + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// sampleSpec draws one solve spec from the client's job distribution.
// jobIndex drives the deterministic non-random sequences (hot-spot
// position and scattering-coefficient cycling).
func sampleSpec(c ClientSpec, rng *mathutil.RNG, jobIndex int) service.Spec {
	j := c.Job
	spec := service.Spec{Kind: j.Kind}

	if j.N.zero() {
		spec.N = 12
	} else {
		spec.N = j.N.sample(rng)
	}
	if j.Rays.zero() {
		spec.Rays = 10
	} else {
		spec.Rays = j.Rays.sample(rng)
	}
	if j.TwoLevelFraction > 0 && rng.Float64() < j.TwoLevelFraction {
		spec.Levels = 2
		spec.PatchN = j.PatchN
		spec.RR = j.RR
	}
	spec.Kappa = j.Kappa
	spec.SigmaT4 = j.SigmaT4
	if len(j.Scatter) > 0 {
		// Cycle rather than draw: a sweep must cover every listed
		// coefficient, not sample them.
		spec.ScatterCoeff = j.Scatter[jobIndex%len(j.Scatter)]
	}
	spec.WallEmissivity = j.WallEmissivity
	spec.WallSigmaT4 = j.WallSigmaT4
	if j.Kind == service.KindHotSpot && len(j.HotPositions) > 0 {
		pos := j.HotPositions[jobIndex%len(j.HotPositions)]
		spec.HotX, spec.HotY, spec.HotZ = pos[0], pos[1], pos[2]
		spec.HotN = j.HotN
		spec.HotKappa = j.HotKappa
		spec.HotSigmaT4 = j.HotSigmaT4
	}
	spec.Threshold = j.Threshold
	// Adaptive draw is conditional so workloads that don't use it keep
	// their RNG stream — and therefore their golden traces — unchanged.
	adaptive := j.AdaptiveFraction > 0 && rng.Float64() < j.AdaptiveFraction
	if adaptive {
		spec.AdaptiveRelTol = j.AdaptiveRelTol
		spec.AdaptiveMinRays = j.AdaptiveMinRays
		spec.AdaptiveMaxRays = spec.Rays
	} else if j.SpectralBands >= 2 {
		// Spectral and adaptive are incompatible at the solver; the
		// non-adaptive remainder carries the band sweep.
		spec.SpectralBands = j.SpectralBands
		spec.SpectralSpread = j.SpectralSpread
	}
	if j.DistinctSeeds {
		spec.Seed = rng.Uint64() | 1 // never 0: 0 would normalize to the default
	}

	switch {
	case c.Class != "":
		spec.Class = c.Class
	case len(c.ClassMix) > 0:
		spec.Class = sampleClass(c.ClassMix, rng)
	}
	return spec.Normalized()
}

// sampleClass draws from the weighted class mix, iterating classes in
// rank order (never map order) for determinism.
func sampleClass(mix map[string]float64, rng *mathutil.RNG) string {
	total := 0.0
	for _, class := range service.Classes() {
		total += mix[class]
	}
	u := rng.Float64() * total
	last := service.ClassBatch
	for _, class := range service.Classes() {
		if mix[class] <= 0 {
			continue
		}
		last = class
		u -= mix[class]
		if u < 0 {
			return class
		}
	}
	return last // float round-off left u ≥ 0: the last positive class
}

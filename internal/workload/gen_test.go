package workload

import (
	"bytes"
	"errors"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"github.com/uintah-repro/rmcrt/internal/service"
)

func testSpec() Spec {
	return Spec{
		Name: "gen-test",
		Clients: []ClientSpec{
			{
				Name: "open", Count: 2, Jobs: 5, Class: service.ClassInteractive,
				Arrival: Arrival{Process: ArrivalPoisson, RateHz: 100},
				Job: JobDist{
					N:    IntDist{Choices: []int{8, 10, 12}, Weights: []float64{2, 1, 1}},
					Rays: IntDist{Min: 4, Max: 12}, DistinctSeeds: true,
				},
			},
			{
				Name: "closed", Jobs: 6, Mode: ModeClosed, Inflight: 2,
				ClassMix: map[string]float64{service.ClassBatch: 3, service.ClassBestEffort: 1},
				Arrival:  Arrival{Process: ArrivalGamma, Shape: 0.7, Scale: 0.004},
				Job: JobDist{
					Kind: service.KindUniform, Kappa: 2,
					Scatter: []float64{0, 1},
					N:       IntDist{Const: 10}, TwoLevelFraction: 0.5,
				},
			},
			{
				Name: "hot", Jobs: 6, Mode: ModeASAP,
				Job: JobDist{
					Kind:         service.KindHotSpot,
					HotPositions: [][3]int{{0, 0, 0}, {2, 2, 2}, {4, 4, 4}},
					HotN:         3, HotKappa: 4, HotSigmaT4: 6,
					N: IntDist{Const: 8},
				},
			},
		},
	}
}

func TestGenerateDeterministicAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var ref *Plan
	for _, procs := range []int{1, 4, 16} {
		runtime.GOMAXPROCS(procs)
		plan, err := Generate(testSpec(), 42)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = plan
			continue
		}
		if len(plan.Subs) != len(ref.Subs) {
			t.Fatalf("GOMAXPROCS=%d: %d subs vs %d", procs, len(plan.Subs), len(ref.Subs))
		}
		for i := range plan.Subs {
			if plan.Subs[i] != ref.Subs[i] {
				t.Fatalf("GOMAXPROCS=%d: sub %d differs:\n  %+v\nvs\n  %+v", procs, i, plan.Subs[i], ref.Subs[i])
			}
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a, err := Generate(testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Subs {
		if a.Subs[i].At == b.Subs[i].At {
			same++
		}
	}
	if same == len(a.Subs) {
		t.Fatal("different seeds produced identical timelines")
	}
}

func TestGenerateShape(t *testing.T) {
	ws := testSpec()
	plan, err := Generate(ws, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(plan.Subs), ws.TotalJobs(); got != want {
		t.Fatalf("generated %d submissions, want %d", got, want)
	}
	if got, want := len(plan.Clients), 4; got != want { // open/0, open/1, closed, hot
		t.Fatalf("%d plan clients, want %d", got, want)
	}
	// Timeline sorted by At; indexes sequential.
	if !sort.SliceIsSorted(plan.Subs, func(i, j int) bool { return plan.Subs[i].At < plan.Subs[j].At }) {
		t.Fatal("timeline not sorted by At")
	}
	perClient := map[string]int{}
	for i, sub := range plan.Subs {
		if sub.Index != i {
			t.Fatalf("sub %d has index %d", i, sub.Index)
		}
		if err := sub.Spec.Validate(); err != nil {
			t.Fatalf("generated invalid spec: %v", err)
		}
		if sub.Class != sub.Spec.Class {
			t.Fatalf("denormalized class %q != spec class %q", sub.Class, sub.Spec.Class)
		}
		perClient[sub.Client]++
	}
	for _, want := range []struct {
		client string
		jobs   int
	}{{"open/0", 5}, {"open/1", 5}, {"closed", 6}, {"hot", 6}} {
		if perClient[want.client] != want.jobs {
			t.Fatalf("client %s emitted %d jobs, want %d", want.client, perClient[want.client], want.jobs)
		}
	}
	// ASAP client's submissions all at offset 0, in per-client order.
	for _, sub := range plan.Subs {
		if sub.Client == "hot" && sub.At != 0 {
			t.Fatalf("asap client planned at %v, want 0", sub.At)
		}
	}
}

func TestGenerateHotSpotCycling(t *testing.T) {
	plan, err := Generate(testSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	positions := [][3]int{{0, 0, 0}, {2, 2, 2}, {4, 4, 4}}
	i := 0
	for _, sub := range plan.Subs {
		if sub.Client != "hot" {
			continue
		}
		want := positions[i%3]
		if sub.Spec.HotX != want[0] || sub.Spec.HotY != want[1] || sub.Spec.HotZ != want[2] {
			t.Fatalf("hot job %d at (%d,%d,%d), want %v", i, sub.Spec.HotX, sub.Spec.HotY, sub.Spec.HotZ, want)
		}
		if sub.Spec.HotN != 3 || sub.Spec.HotKappa != 4 || sub.Spec.HotSigmaT4 != 6 {
			t.Fatalf("hot job %d lost spot parameters: %+v", i, sub.Spec)
		}
		i++
	}
	if i != 6 {
		t.Fatalf("saw %d hot jobs, want 6", i)
	}
}

func TestGenerateClassMixAndDistinctSeeds(t *testing.T) {
	plan, err := Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string]int{}
	seeds := map[uint64]int{}
	for _, sub := range plan.Subs {
		if sub.Client == "closed" {
			classes[sub.Class]++
		}
		if sub.Client == "open/0" || sub.Client == "open/1" {
			seeds[sub.Spec.Seed]++
		}
	}
	if classes[service.ClassInteractive] != 0 {
		t.Fatal("closed client must never draw interactive")
	}
	if classes[service.ClassBatch]+classes[service.ClassBestEffort] != 6 {
		t.Fatalf("class mix accounting broken: %v", classes)
	}
	for seed, n := range seeds {
		if n > 1 {
			t.Fatalf("distinct_seeds client reused seed %d (%d times)", seed, n)
		}
		if seed == 0 {
			t.Fatal("distinct seed 0 would normalize to the default")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Spec{
		{},          // no name
		{Name: "x"}, // no clients
		{Name: "x", Clients: []ClientSpec{{Name: "a", Jobs: 0, Arrival: Arrival{RateHz: 1}}}},
		{Name: "x", Clients: []ClientSpec{{Name: "a", Jobs: 1, Arrival: Arrival{Process: "zipf", RateHz: 1}}}},
		{Name: "x", Clients: []ClientSpec{{Name: "a", Jobs: 1, Arrival: Arrival{RateHz: -1}}}},
		{Name: "x", Clients: []ClientSpec{{Name: "a", Jobs: 1, Arrival: Arrival{RateHz: 1}, Class: "platinum"}}},
		{Name: "x", Clients: []ClientSpec{
			{Name: "a", Jobs: 1, Arrival: Arrival{RateHz: 1}},
			{Name: "a", Jobs: 1, Arrival: Arrival{RateHz: 1}},
		}}, // duplicate name
		{Name: "x", Clients: []ClientSpec{{
			Name: "a", Jobs: 1, Arrival: Arrival{RateHz: 1},
			Class: service.ClassBatch, ClassMix: map[string]float64{service.ClassBatch: 1},
		}}}, // both class and mix
		{Name: "x", Clients: []ClientSpec{{
			Name: "a", Jobs: 1, Arrival: Arrival{RateHz: 1},
			Job: JobDist{TwoLevelFraction: 1.5},
		}}},
		{Name: "x", Clients: []ClientSpec{{
			Name: "a", Jobs: 1, Arrival: Arrival{Process: ArrivalGamma, Shape: 0, Scale: 1},
		}}},
	}
	for i, ws := range bad {
		if _, err := Generate(ws, 1); err == nil {
			t.Fatalf("case %d: invalid spec %+v accepted", i, ws)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	plan, err := Generate(testSpec(), 21)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := WriteTrace(path, plan); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != plan.Workload || got.Seed != plan.Seed {
		t.Fatalf("header mismatch: %s/%d vs %s/%d", got.Workload, got.Seed, plan.Workload, plan.Seed)
	}
	if len(got.Clients) != len(plan.Clients) {
		t.Fatalf("%d clients decoded, want %d", len(got.Clients), len(plan.Clients))
	}
	for i := range plan.Clients {
		if got.Clients[i] != plan.Clients[i] {
			t.Fatalf("client %d: %+v vs %+v", i, got.Clients[i], plan.Clients[i])
		}
	}
	if len(got.Subs) != len(plan.Subs) {
		t.Fatalf("%d subs decoded, want %d", len(got.Subs), len(plan.Subs))
	}
	for i := range plan.Subs {
		if got.Subs[i] != plan.Subs[i] {
			t.Fatalf("sub %d: %+v vs %+v", i, got.Subs[i], plan.Subs[i])
		}
	}
}

func TestTraceBytesDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	p1, _ := Generate(testSpec(), 8)
	p2, _ := Generate(testSpec(), 8)
	if err := EncodeTrace(&a, p1); err != nil {
		t.Fatal(err)
	}
	if err := EncodeTrace(&b, p2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same (spec, seed) must serialize byte-identically")
	}
}

func TestTraceTornTail(t *testing.T) {
	var buf bytes.Buffer
	plan, _ := Generate(testSpec(), 4)
	if err := EncodeTrace(&buf, plan); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	// Chop mid-record: decode must surface ErrTornTrace with the valid
	// prefix intact.
	torn := whole[:len(whole)-7]
	got, err := DecodeTrace(bytes.NewReader(torn))
	if !errors.Is(err, ErrTornTrace) {
		t.Fatalf("torn trace error = %v, want ErrTornTrace", err)
	}
	if got == nil || len(got.Subs) >= len(plan.Subs) || len(got.Subs) == 0 {
		t.Fatalf("torn decode kept %d subs of %d, want a non-empty strict prefix", len(got.Subs), len(plan.Subs))
	}
	for i := range got.Subs {
		if got.Subs[i] != plan.Subs[i] {
			t.Fatalf("torn prefix sub %d corrupted", i)
		}
	}

	// Flip one payload byte: the CRC must catch it.
	corrupt := append([]byte(nil), whole...)
	corrupt[len(corrupt)-3] ^= 0xff
	if _, err := DecodeTrace(bytes.NewReader(corrupt)); !errors.Is(err, ErrTornTrace) {
		t.Fatalf("bit-flip error = %v, want ErrTornTrace", err)
	}
}

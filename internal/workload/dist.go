// Package workload is the heavy-traffic workload engine: seeded,
// fully deterministic multi-client load generation against a live
// rmcrtd daemon or the sharded rmcrtrouter cluster, with trace
// record/replay and per-SLO-class reporting.
//
// The paper's whole point is behavior at scale (the 16384-GPU
// strong-scaling study); this package is the serving-side analog — a
// ServeGen-style generator whose arrival processes (Poisson, Gamma,
// Weibull), job-size distributions (region extent, level count, ray
// budget) and class mixes are all drawn from counter-based RNG
// streams, so a (spec, seed) pair names one exact submission sequence
// forever.
package workload

import (
	"fmt"
	"math"
	"sort"

	"github.com/uintah-repro/rmcrt/internal/mathutil"
)

// Arrival process names.
const (
	// ArrivalPoisson draws exponential inter-arrival gaps: RateHz jobs
	// per second on average, memoryless.
	ArrivalPoisson = "poisson"
	// ArrivalGamma draws Gamma(Shape, Scale)-distributed gaps in
	// seconds: burstier than Poisson when Shape < 1, smoother when
	// Shape > 1.
	ArrivalGamma = "gamma"
	// ArrivalWeibull draws Weibull(Shape, Scale)-distributed gaps in
	// seconds — the classic heavy-tail knob (Shape < 1).
	ArrivalWeibull = "weibull"
	// ArrivalFixed spaces submissions exactly 1/RateHz apart:
	// deterministic pacing for smoke tests.
	ArrivalFixed = "fixed"
)

// Arrival describes one client's inter-arrival process.
type Arrival struct {
	// Process is one of the Arrival* names (default poisson).
	Process string `json:"process,omitempty"`
	// RateHz is the mean arrival rate for poisson/fixed (jobs per
	// second).
	RateHz float64 `json:"rate_hz,omitempty"`
	// Shape is the Gamma/Weibull shape parameter k.
	Shape float64 `json:"shape,omitempty"`
	// Scale is the Gamma/Weibull scale parameter θ (resp. λ), in
	// seconds.
	Scale float64 `json:"scale,omitempty"`
}

func (a Arrival) normalized() Arrival {
	if a.Process == "" {
		a.Process = ArrivalPoisson
	}
	return a
}

func (a Arrival) validate() error {
	a = a.normalized()
	switch a.Process {
	case ArrivalPoisson, ArrivalFixed:
		if a.RateHz <= 0 {
			return fmt.Errorf("workload: %s arrival needs rate_hz > 0 (got %g)", a.Process, a.RateHz)
		}
	case ArrivalGamma, ArrivalWeibull:
		if a.Shape <= 0 || a.Scale <= 0 {
			return fmt.Errorf("workload: %s arrival needs shape > 0 and scale > 0 (got %g, %g)", a.Process, a.Shape, a.Scale)
		}
	default:
		return fmt.Errorf("workload: unknown arrival process %q", a.Process)
	}
	return nil
}

// gapSeconds draws the next inter-arrival gap in seconds.
func (a Arrival) gapSeconds(rng *mathutil.RNG) float64 {
	switch a.Process {
	case ArrivalFixed:
		return 1 / a.RateHz
	case ArrivalGamma:
		return SampleGamma(rng, a.Shape, a.Scale)
	case ArrivalWeibull:
		return SampleWeibull(rng, a.Shape, a.Scale)
	default: // poisson
		return SampleExp(rng, a.RateHz)
	}
}

// SampleExp draws an Exponential(rate) variate (mean 1/rate) by
// inversion. Uses -log1p(-U) so U=0 maps to 0, never to +Inf.
func SampleExp(rng *mathutil.RNG, rate float64) float64 {
	return -math.Log1p(-rng.Float64()) / rate
}

// SampleWeibull draws a Weibull(shape k, scale λ) variate by inversion:
// λ·(-ln(1-U))^(1/k).
func SampleWeibull(rng *mathutil.RNG, k, lambda float64) float64 {
	return lambda * math.Pow(-math.Log1p(-rng.Float64()), 1/k)
}

// sampleNormal draws a standard normal via Box–Muller. The 1-U flip
// keeps the log argument in (0,1].
func sampleNormal(rng *mathutil.RNG) float64 {
	u1 := 1 - rng.Float64()
	u2 := rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// SampleGamma draws a Gamma(shape k, scale θ) variate with the
// Marsaglia–Tsang (2000) squeeze method for k >= 1 and the Ahrens
// boost Gamma(k) = Gamma(k+1)·U^(1/k) for k < 1.
func SampleGamma(rng *mathutil.RNG, k, theta float64) float64 {
	if k < 1 {
		u := 1 - rng.Float64() // (0,1]: U^(1/k) with U=0 would underflow to 0 gaps
		return SampleGamma(rng, k+1, theta) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = sampleNormal(rng)
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := 1 - rng.Float64() // (0,1]: the log test below needs u > 0
		if u < 1-0.0331*x*x*x*x {
			return d * v * theta
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * theta
		}
	}
}

// ExpCDF is the Exponential(rate) distribution function.
func ExpCDF(rate float64) func(float64) float64 {
	return func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 1 - math.Exp(-rate*x)
	}
}

// WeibullCDF is the Weibull(shape k, scale λ) distribution function.
func WeibullCDF(k, lambda float64) func(float64) float64 {
	return func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 1 - math.Exp(-math.Pow(x/lambda, k))
	}
}

// GammaCDF is the Gamma(shape k, scale θ) distribution function,
// the regularized lower incomplete gamma P(k, x/θ).
func GammaCDF(k, theta float64) func(float64) float64 {
	return func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return regIncGammaP(k, x/theta)
	}
}

// regIncGammaP computes the regularized lower incomplete gamma
// P(a, x) = γ(a,x)/Γ(a) with the standard split: power series for
// x < a+1, Lentz's continued fraction for the upper tail otherwise
// (Numerical Recipes §6.2).
func regIncGammaP(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// Series: P(a,x) = e^{-x} x^a / Γ(a) · Σ x^n / (a·(a+1)···(a+n)).
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a,x); P = 1 - Q.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}

// KSStatistic returns the two-sided Kolmogorov–Smirnov statistic
// D_n = sup_x |F_n(x) - F(x)| of the samples against the analytic CDF.
// samples is reordered (sorted) in place.
func KSStatistic(samples []float64, cdf func(float64) float64) float64 {
	sort.Float64s(samples)
	n := float64(len(samples))
	d := 0.0
	for i, x := range samples {
		f := cdf(x)
		// The empirical CDF jumps at x: check both sides of the step.
		if lo := f - float64(i)/n; lo > d {
			d = lo
		}
		if hi := float64(i+1)/n - f; hi > d {
			d = hi
		}
	}
	return d
}

// KSCritical returns the large-n critical value for the two-sided KS
// test at significance alpha: c(α)/√n with c(α) = √(-ln(α/2)/2).
// For α = 0.001, c ≈ 1.9495 — a fixed-seed test using it fails with
// probability ~0.1% under a fresh seed and never flakes under the
// pinned one.
func KSCritical(n int, alpha float64) float64 {
	return math.Sqrt(-math.Log(alpha/2)/2) / math.Sqrt(float64(n))
}

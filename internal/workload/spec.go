package workload

import (
	"fmt"

	"github.com/uintah-repro/rmcrt/internal/service"
)

// Client loop modes.
const (
	// ModeOpen is an open-loop client: submissions fire at the arrival
	// process's instants regardless of how the server keeps up — the
	// mode that actually produces overload.
	ModeOpen = "open"
	// ModeClosed is a closed-loop client: at most Inflight submissions
	// outstanding, the arrival gap is think time between a completion
	// and the next submission.
	ModeClosed = "closed"
	// ModeASAP ignores timing entirely and issues the client's jobs
	// back-to-back (still bounded by Inflight when set) — replay-fast
	// and smoke-test mode.
	ModeASAP = "asap"
)

// IntDist is a deterministic distribution over ints: exactly one of
// Const, Choices, or [Min,Max] is active (checked in that order).
type IntDist struct {
	// Const always yields this value when non-zero.
	Const int `json:"const,omitempty"`
	// Choices yields one of these values; Weights (same length,
	// optional) biases the draw and defaults to uniform.
	Choices []int     `json:"choices,omitempty"`
	Weights []float64 `json:"weights,omitempty"`
	// Min/Max yield a uniform int in [Min, Max].
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`
}

// zero reports whether the distribution is unset.
func (d IntDist) zero() bool {
	return d.Const == 0 && len(d.Choices) == 0 && d.Min == 0 && d.Max == 0
}

func (d IntDist) validate(name string) error {
	switch {
	case d.Const != 0:
		if d.Const < 0 {
			return fmt.Errorf("workload: %s const = %d (want > 0)", name, d.Const)
		}
	case len(d.Choices) > 0:
		if len(d.Weights) != 0 && len(d.Weights) != len(d.Choices) {
			return fmt.Errorf("workload: %s has %d weights for %d choices", name, len(d.Weights), len(d.Choices))
		}
		for _, w := range d.Weights {
			if w < 0 {
				return fmt.Errorf("workload: %s has negative weight %g", name, w)
			}
		}
	case d.Min != 0 || d.Max != 0:
		if d.Min <= 0 || d.Max < d.Min {
			return fmt.Errorf("workload: %s range [%d,%d] invalid", name, d.Min, d.Max)
		}
	}
	return nil
}

// sample draws from the distribution (0 when unset, so spec defaults
// apply downstream).
func (d IntDist) sample(r rngSource) int {
	switch {
	case d.Const != 0:
		return d.Const
	case len(d.Choices) > 0:
		if len(d.Weights) == 0 {
			return d.Choices[r.Intn(len(d.Choices))]
		}
		total := 0.0
		for _, w := range d.Weights {
			total += w
		}
		u := r.Float64() * total
		for i, w := range d.Weights {
			u -= w
			if u < 0 {
				return d.Choices[i]
			}
		}
		return d.Choices[len(d.Choices)-1]
	case d.Min != 0 || d.Max != 0:
		return d.Min + r.Intn(d.Max-d.Min+1)
	}
	return 0
}

// rngSource is the sampling surface IntDist needs (satisfied by
// *mathutil.RNG; an interface so tests can script draws).
type rngSource interface {
	Float64() float64
	Intn(n int) int
}

// JobDist shapes the solve specs one client emits. Zero-valued fields
// inherit the service defaults (see service.Spec.Normalized).
type JobDist struct {
	// Kind is the medium kind for every job ("benchmark", "uniform",
	// "hotspot"; default benchmark).
	Kind string `json:"kind,omitempty"`
	// N is the fine-level resolution distribution (default Const 12).
	N IntDist `json:"n,omitempty"`
	// Rays is the per-cell ray budget distribution (default Const 10).
	Rays IntDist `json:"rays,omitempty"`
	// TwoLevelFraction of jobs get Levels=2 (the paper's AMR config);
	// the rest are single-level.
	TwoLevelFraction float64 `json:"two_level_fraction,omitempty"`
	// PatchN and RR apply to the two-level jobs only.
	PatchN int `json:"patch_n,omitempty"`
	RR     int `json:"rr,omitempty"`
	// Kappa/SigmaT4 set the uniform/hotspot background medium.
	Kappa   float64 `json:"kappa,omitempty"`
	SigmaT4 float64 `json:"sigma_t4,omitempty"`
	// Scatter cycles the isotropic scattering coefficient through this
	// list in job order — a sweep covers every listed value (empty = 0,
	// pure absorption).
	Scatter []float64 `json:"scatter,omitempty"`
	// WallEmissivity and WallSigmaT4 set the wall radiative condition.
	WallEmissivity float64 `json:"wall_emissivity,omitempty"`
	WallSigmaT4    float64 `json:"wall_sigma_t4,omitempty"`
	// HotPositions, for hotspot jobs, cycles the hot-spot low corner
	// through these [x,y,z] cell positions in order — the moving
	// hot-spot sequence that reshapes property tables per step.
	HotPositions [][3]int `json:"hot_positions,omitempty"`
	// HotN/HotKappa/HotSigmaT4 size and heat the spot.
	HotN       int     `json:"hot_n,omitempty"`
	HotKappa   float64 `json:"hot_kappa,omitempty"`
	HotSigmaT4 float64 `json:"hot_sigma_t4,omitempty"`
	// Threshold overrides the ray extinction threshold.
	Threshold float64 `json:"threshold,omitempty"`
	// AdaptiveFraction of jobs run with an adaptive ray budget: the
	// sampled Rays value becomes AdaptiveMaxRays (the pricing bound) and
	// the solver stops early per cell once the intensity SEM clears
	// AdaptiveRelTol. The rest keep the fixed budget.
	AdaptiveFraction float64 `json:"adaptive_fraction,omitempty"`
	// AdaptiveRelTol is the relative SEM tolerance for adaptive jobs
	// (service default applies when 0 and AdaptiveFraction > 0 is
	// rejected, so set both together).
	AdaptiveRelTol float64 `json:"adaptive_rel_tol,omitempty"`
	// AdaptiveMinRays is the starting wave size for adaptive jobs
	// (0 = solver default).
	AdaptiveMinRays int `json:"adaptive_min_rays,omitempty"`
	// SpectralBands, when >= 2, makes every non-adaptive job a K-band
	// spectral solve over a synthetic geometric κ ladder spanning
	// SpectralSpread (see service.Spec). Adaptive jobs stay gray —
	// the two modes are incompatible at the solver.
	SpectralBands  int     `json:"spectral_bands,omitempty"`
	SpectralSpread float64 `json:"spectral_spread,omitempty"`
	// DistinctSeeds gives every job its own solver seed, defeating the
	// result cache and single-flight coalescing so each submission is
	// real solve work. Off, identical specs coalesce — which is itself
	// a scenario worth measuring.
	DistinctSeeds bool `json:"distinct_seeds,omitempty"`
}

func (j JobDist) validate() error {
	if err := j.N.validate("n"); err != nil {
		return err
	}
	if err := j.Rays.validate("rays"); err != nil {
		return err
	}
	if j.TwoLevelFraction < 0 || j.TwoLevelFraction > 1 {
		return fmt.Errorf("workload: two_level_fraction = %g (want in [0,1])", j.TwoLevelFraction)
	}
	for _, s := range j.Scatter {
		if s < 0 {
			return fmt.Errorf("workload: scatter coefficient %g (want >= 0)", s)
		}
	}
	if j.AdaptiveFraction < 0 || j.AdaptiveFraction > 1 {
		return fmt.Errorf("workload: adaptive_fraction = %g (want in [0,1])", j.AdaptiveFraction)
	}
	if j.AdaptiveFraction > 0 && j.AdaptiveRelTol <= 0 {
		return fmt.Errorf("workload: adaptive_fraction = %g needs adaptive_rel_tol > 0", j.AdaptiveFraction)
	}
	if j.AdaptiveRelTol < 0 {
		return fmt.Errorf("workload: adaptive_rel_tol = %g (want >= 0)", j.AdaptiveRelTol)
	}
	if j.AdaptiveMinRays < 0 {
		return fmt.Errorf("workload: adaptive_min_rays = %d (want >= 0)", j.AdaptiveMinRays)
	}
	if j.SpectralBands < 0 || j.SpectralBands == 1 || j.SpectralBands > 16 {
		return fmt.Errorf("workload: spectral_bands = %d (want 0 or 2..16)", j.SpectralBands)
	}
	if j.SpectralBands >= 2 && j.SpectralSpread != 0 && j.SpectralSpread < 1 {
		return fmt.Errorf("workload: spectral_spread = %g (want >= 1)", j.SpectralSpread)
	}
	return nil
}

// ClientSpec is one traffic source: Count identical clients sharing an
// arrival process, loop mode, class mix and job shape. Each client
// instance draws from its own RNG stream, so the merged sequence is
// independent of scheduling.
type ClientSpec struct {
	// Name labels the client group in traces and reports.
	Name string `json:"name"`
	// Count is how many identical client instances to run (default 1).
	Count int `json:"count,omitempty"`
	// Jobs is how many submissions EACH instance makes. Required.
	Jobs int `json:"jobs"`
	// Class fixes the SLO class of every job; ClassMix draws it
	// per-job from a weighted mix instead. Exactly one may be set
	// (neither = service default "batch").
	Class    string             `json:"class,omitempty"`
	ClassMix map[string]float64 `json:"class_mix,omitempty"`
	// Arrival is the inter-submission gap process.
	Arrival Arrival `json:"arrival"`
	// Mode is open (default), closed, or asap.
	Mode string `json:"mode,omitempty"`
	// Inflight bounds outstanding submissions in closed/asap modes
	// (default 1).
	Inflight int `json:"inflight,omitempty"`
	// DeadlineMs attaches a per-job deadline (sent as the
	// X-Job-Deadline-Ms header) of this many milliseconds to every
	// submission; 0 sends none.
	DeadlineMs int `json:"deadline_ms,omitempty"`
	// Job shapes the solve specs.
	Job JobDist `json:"job"`
}

func (c ClientSpec) normalized() ClientSpec {
	if c.Count == 0 {
		c.Count = 1
	}
	if c.Mode == "" {
		c.Mode = ModeOpen
	}
	if c.Inflight == 0 {
		c.Inflight = 1
	}
	return c
}

func (c ClientSpec) validate() error {
	c = c.normalized()
	if c.Name == "" {
		return fmt.Errorf("workload: client needs a name")
	}
	if c.Jobs <= 0 {
		return fmt.Errorf("workload: client %q jobs = %d (want > 0)", c.Name, c.Jobs)
	}
	if c.Count < 1 {
		return fmt.Errorf("workload: client %q count = %d (want >= 1)", c.Name, c.Count)
	}
	if c.Mode != ModeOpen && c.Mode != ModeClosed && c.Mode != ModeASAP {
		return fmt.Errorf("workload: client %q mode %q (want %q, %q or %q)", c.Name, c.Mode, ModeOpen, ModeClosed, ModeASAP)
	}
	if c.Inflight < 1 {
		return fmt.Errorf("workload: client %q inflight = %d (want >= 1)", c.Name, c.Inflight)
	}
	if c.DeadlineMs < 0 {
		return fmt.Errorf("workload: client %q deadline_ms = %d (want >= 0)", c.Name, c.DeadlineMs)
	}
	if c.Class != "" && len(c.ClassMix) > 0 {
		return fmt.Errorf("workload: client %q sets both class and class_mix", c.Name)
	}
	if c.Class != "" && service.ClassRank(c.Class) > 2 {
		return fmt.Errorf("workload: client %q unknown class %q", c.Name, c.Class)
	}
	total := 0.0
	for class, w := range c.ClassMix {
		if service.ClassRank(class) > 2 {
			return fmt.Errorf("workload: client %q unknown class %q in mix", c.Name, class)
		}
		if w < 0 {
			return fmt.Errorf("workload: client %q class %q weight %g (want >= 0)", c.Name, class, w)
		}
		total += w
	}
	if len(c.ClassMix) > 0 && total <= 0 {
		return fmt.Errorf("workload: client %q class_mix weights sum to %g (want > 0)", c.Name, total)
	}
	if c.Mode != ModeASAP {
		if err := c.Arrival.validate(); err != nil {
			return fmt.Errorf("client %q: %w", c.Name, err)
		}
	}
	return c.Job.validate()
}

// Spec is a complete workload description: a named set of client
// groups. Together with a seed it deterministically names one exact
// submission sequence.
type Spec struct {
	// Name labels the workload in traces and reports.
	Name string `json:"name"`
	// Clients are the traffic sources, merged into one timeline.
	Clients []ClientSpec `json:"clients"`
}

// Validate checks the whole workload spec.
func (w Spec) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workload: spec needs a name")
	}
	if len(w.Clients) == 0 {
		return fmt.Errorf("workload: spec %q has no clients", w.Name)
	}
	seen := make(map[string]bool, len(w.Clients))
	for _, c := range w.Clients {
		if seen[c.Name] {
			return fmt.Errorf("workload: duplicate client name %q", c.Name)
		}
		seen[c.Name] = true
		if err := c.validate(); err != nil {
			return err
		}
	}
	return nil
}

// TotalJobs is the number of submissions the workload will generate.
func (w Spec) TotalJobs() int {
	total := 0
	for _, c := range w.Clients {
		n := c.normalized()
		total += n.Count * n.Jobs
	}
	return total
}

package workload

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/uintah-repro/rmcrt/internal/mathutil"
	"github.com/uintah-repro/rmcrt/internal/service"
)

// Outcome is the terminal classification of one submission as the
// load generator observed it.
type Outcome string

const (
	// OutcomeDone: accepted and completed successfully.
	OutcomeDone Outcome = "done"
	// OutcomeQueueFull: rejected 429 because the server's submission
	// queue was at capacity.
	OutcomeQueueFull Outcome = "queue-full"
	// OutcomeRateLimited: rejected 429 by per-client admission — this
	// client exceeded its token-bucket allowance, independent of queue
	// state.
	OutcomeRateLimited Outcome = "rate-limited"
	// OutcomeRejected: rejected 4xx for any other reason (bad spec,
	// body too large).
	OutcomeRejected Outcome = "rejected"
	// OutcomeDeadline: failed with a deadline-exceeded error.
	OutcomeDeadline Outcome = "deadline"
	// OutcomeFailed: failed with any other error.
	OutcomeFailed Outcome = "failed"
	// OutcomeCancelled: ended cancelled.
	OutcomeCancelled Outcome = "cancelled"
	// OutcomeTransport: the submission never reached the server
	// (connection refused, reset).
	OutcomeTransport Outcome = "transport"
	// OutcomeTimeout: accepted, but not terminal before the runner's
	// per-job wait budget expired.
	OutcomeTimeout Outcome = "timeout"
)

// ClassReport aggregates one SLO class's outcomes and latency.
type ClassReport struct {
	Submitted   int `json:"submitted"`
	Done        int `json:"done"`
	QueueFull   int `json:"queue_full,omitempty"`
	RateLimited int `json:"rate_limited,omitempty"`
	// RetryHinted counts 429s that carried a Retry-After header — the
	// server told this client when to come back.
	RetryHinted int `json:"retry_hinted,omitempty"`
	Rejected    int `json:"rejected,omitempty"`
	Deadline    int `json:"deadline,omitempty"`
	Failed      int `json:"failed,omitempty"`
	Cancelled   int `json:"cancelled,omitempty"`
	Transport   int `json:"transport,omitempty"`
	Timeout     int `json:"timeout,omitempty"`
	// Submit→terminal latency of done jobs, milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	// GoodputPerSec is done jobs per wall second.
	GoodputPerSec float64 `json:"goodput_per_sec"`

	latencies []float64 // milliseconds, done jobs only
}

// Report is one run's result: per-class outcome accounting, latency
// percentiles, goodput, and the server-side counter deltas (packed
// cache builds/hits, per-class overload counters) scraped from
// /metrics before and after.
type Report struct {
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	Target   string `json:"target,omitempty"`
	Jobs     int    `json:"jobs"`
	Replayed bool   `json:"replayed,omitempty"`
	// WallSeconds is run wall time (zeroed by Normalize).
	WallSeconds float64 `json:"wall_seconds"`
	// Classes maps SLO class → aggregate. JSON maps marshal in sorted
	// key order, so the rendering is deterministic.
	Classes map[string]*ClassReport `json:"classes"`
	// Counters holds server counter deltas over the run for series
	// matching the rmcrt_packed_/rmcrtd_/router_ families.
	Counters map[string]int64 `json:"counters,omitempty"`
}

func newReport(plan *Plan) *Report {
	r := &Report{
		Workload: plan.Workload,
		Seed:     plan.Seed,
		Jobs:     len(plan.Subs),
		Classes:  make(map[string]*ClassReport, 3),
	}
	for _, class := range service.Classes() {
		r.Classes[class] = &ClassReport{}
	}
	return r
}

func (r *Report) class(name string) *ClassReport {
	c, ok := r.Classes[name]
	if !ok {
		c = &ClassReport{}
		r.Classes[name] = c
	}
	return c
}

// record folds one observed outcome into the report. retryHinted marks
// a 429 that carried a Retry-After header.
func (r *Report) record(class string, o Outcome, latencyMs float64, retryHinted bool) {
	c := r.class(class)
	c.Submitted++
	if retryHinted {
		c.RetryHinted++
	}
	switch o {
	case OutcomeDone:
		c.Done++
		c.latencies = append(c.latencies, latencyMs)
	case OutcomeQueueFull:
		c.QueueFull++
	case OutcomeRateLimited:
		c.RateLimited++
	case OutcomeRejected:
		c.Rejected++
	case OutcomeDeadline:
		c.Deadline++
	case OutcomeFailed:
		c.Failed++
	case OutcomeCancelled:
		c.Cancelled++
	case OutcomeTransport:
		c.Transport++
	case OutcomeTimeout:
		c.Timeout++
	}
}

// finalize computes the derived latency and goodput figures.
func (r *Report) finalize(wallSeconds float64) {
	r.WallSeconds = wallSeconds
	for _, c := range r.Classes {
		if len(c.latencies) > 0 {
			sort.Float64s(c.latencies)
			c.P50Ms = percentile(c.latencies, 0.50)
			c.P95Ms = percentile(c.latencies, 0.95)
			c.P99Ms = percentile(c.latencies, 0.99)
			c.MeanMs = mathutil.Mean(c.latencies)
		}
		if wallSeconds > 0 {
			c.GoodputPerSec = float64(c.Done) / wallSeconds
		}
	}
}

// percentile returns the q-quantile of sorted xs by the nearest-rank
// method.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Normalize zeroes every wall-clock-dependent field, leaving only the
// deterministic accounting: same (spec, seed) against a fresh server
// yields byte-identical normalized reports, which is the loadgen
// acceptance criterion.
func (r *Report) Normalize() {
	r.Target = ""
	r.WallSeconds = 0
	for _, c := range r.Classes {
		c.P50Ms, c.P95Ms, c.P99Ms, c.MeanMs = 0, 0, 0, 0
		c.GoodputPerSec = 0
	}
}

// WriteJSON renders the report with stable two-space indentation
// (matching the cmd/scaling golden encoding).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// counterPrefixes are the server metric families a report snapshots.
var counterPrefixes = []string{"rmcrt_packed_", "rmcrtd_", "router_"}

// parseCounters extracts counter-typed series from a plain-text
// /metrics exposition, keeping only the families a workload report
// cares about. Gauges and histograms are skipped: gauges snapshot
// wall-clock state (queue depth, unix timestamps) that is not a delta,
// and histogram sums are floats.
func parseCounters(r io.Reader) (map[string]int64, error) {
	out := make(map[string]int64)
	isCounter := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) == 4 && parts[3] == "counter" {
				isCounter[parts[2]] = true
			}
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, valStr, ok := strings.Cut(line, " ")
		if !ok || !isCounter[name] {
			continue
		}
		keep := false
		for _, p := range counterPrefixes {
			if strings.HasPrefix(name, p) {
				keep = true
				break
			}
		}
		if !keep {
			continue
		}
		v, err := strconv.ParseInt(valStr, 10, 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	return out, sc.Err()
}

// counterDelta subtracts the before snapshot from after, keeping every
// series seen after (missing-before reads as 0).
func counterDelta(before, after map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(after))
	for name, v := range after {
		out[name] = v - before[name]
	}
	return out
}

package workload

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Trace framing, mirroring the service journal and internal/uda:
// [u32 LE payload length][u32 LE crc32-IEEE(payload)][JSON payload].
// Record 0 is the header; every following record is one Submission in
// timeline order. Because the payloads serialize a Plan — a pure
// function of (spec, seed) — the file is byte-identical across runs,
// machines and GOMAXPROCS, which is the property the golden tests pin.
const (
	traceHeaderLen = 8
	// maxTraceRecord bounds one record (1 MiB): a corrupt length field
	// fails fast instead of allocating garbage.
	maxTraceRecord = 1 << 20
	traceVersion   = 1
)

// ErrTornTrace reports a trace whose tail is an incomplete or
// corrupt record; the decoded prefix is still returned.
var ErrTornTrace = errors.New("workload: torn trace tail")

// traceHeader is record 0.
type traceHeader struct {
	Version  int          `json:"version"`
	Workload string       `json:"workload"`
	Seed     uint64       `json:"seed"`
	Count    int          `json:"count"`
	Clients  []PlanClient `json:"clients,omitempty"`
}

func encodeTraceRecord(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(payload) > maxTraceRecord {
		return fmt.Errorf("workload: trace record %d bytes exceeds cap %d", len(payload), maxTraceRecord)
	}
	var hdr [traceHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// decodeTraceRecord reads one framed record into v. io.EOF at a record
// boundary is returned verbatim; any torn or corrupt record maps to
// ErrTornTrace.
func decodeTraceRecord(r io.Reader, v any) error {
	var hdr [traceHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return ErrTornTrace
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxTraceRecord {
		return ErrTornTrace
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return ErrTornTrace
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return ErrTornTrace
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return ErrTornTrace
	}
	return nil
}

// EncodeTrace writes the plan to w in the framed trace format.
func EncodeTrace(w io.Writer, plan *Plan) error {
	if err := encodeTraceRecord(w, traceHeader{
		Version: traceVersion, Workload: plan.Workload, Seed: plan.Seed,
		Count: len(plan.Subs), Clients: plan.Clients,
	}); err != nil {
		return err
	}
	for i := range plan.Subs {
		if err := encodeTraceRecord(w, &plan.Subs[i]); err != nil {
			return err
		}
	}
	return nil
}

// DecodeTrace reads a framed trace. A torn tail returns the valid
// prefix plan alongside ErrTornTrace; deeper damage (bad header,
// version mismatch) is fatal.
func DecodeTrace(r io.Reader) (*Plan, error) {
	var hdr traceHeader
	if err := decodeTraceRecord(r, &hdr); err != nil {
		return nil, fmt.Errorf("workload: unreadable trace header: %w", err)
	}
	if hdr.Version != traceVersion {
		return nil, fmt.Errorf("workload: trace version %d (this build reads %d)", hdr.Version, traceVersion)
	}
	plan := &Plan{Workload: hdr.Workload, Seed: hdr.Seed, Clients: hdr.Clients, Subs: make([]Submission, 0, hdr.Count)}
	for {
		var sub Submission
		err := decodeTraceRecord(r, &sub)
		if err == io.EOF {
			break
		}
		if err != nil {
			return plan, ErrTornTrace
		}
		plan.Subs = append(plan.Subs, sub)
	}
	if len(plan.Subs) != hdr.Count {
		return plan, ErrTornTrace
	}
	return plan, nil
}

// WriteTrace records the plan to path (atomically: temp file + rename,
// so a crashed writer never leaves a half-trace under the final name).
func WriteTrace(path string, plan *Plan) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := EncodeTrace(bw, plan); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadTrace loads a recorded plan from path for replay.
func ReadTrace(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeTrace(bufio.NewReader(f))
}

package workload

import (
	"math"
	"runtime"
	"testing"

	"github.com/uintah-repro/rmcrt/internal/mathutil"
)

// ksN and ksAlpha are the statistical acceptance parameters. With
// n = 4000 samples at α = 0.001 the two-sided critical value is
// c(α)/√n = √(-ln(0.0005)/2)/√4000 ≈ 1.9495/63.25 ≈ 0.0308. Under a
// pinned seed the KS statistic is a constant, so these tests can never
// flake; the significance level says a FRESH seed would spuriously
// fail only ~0.1% of the time, i.e. a failure here means the sampler
// is actually wrong.
const (
	ksN     = 4000
	ksAlpha = 0.001
)

func ksCheck(t *testing.T, name string, sample func(*mathutil.RNG) float64, cdf func(float64) float64) {
	t.Helper()
	rng := mathutil.NewStream(420, 1)
	xs := make([]float64, ksN)
	for i := range xs {
		xs[i] = sample(rng)
	}
	d := KSStatistic(xs, cdf)
	crit := KSCritical(ksN, ksAlpha)
	if d > crit {
		t.Fatalf("%s: KS statistic %.5f > critical %.5f (n=%d, α=%g)", name, d, crit, ksN, ksAlpha)
	}
	t.Logf("%s: D=%.5f crit=%.5f", name, d, crit)
}

func TestKSPoissonInterArrivals(t *testing.T) {
	ksCheck(t, "exp(rate=2)",
		func(r *mathutil.RNG) float64 { return SampleExp(r, 2) }, ExpCDF(2))
	ksCheck(t, "exp(rate=0.25)",
		func(r *mathutil.RNG) float64 { return SampleExp(r, 0.25) }, ExpCDF(0.25))
}

func TestKSWeibull(t *testing.T) {
	// Shape < 1 (heavy tail), = 1 (degenerates to exponential), > 1.
	for _, p := range []struct{ k, lambda float64 }{{0.6, 1}, {1, 2}, {2.5, 0.5}} {
		ksCheck(t, "weibull",
			func(r *mathutil.RNG) float64 { return SampleWeibull(r, p.k, p.lambda) },
			WeibullCDF(p.k, p.lambda))
	}
}

func TestKSGamma(t *testing.T) {
	// k < 1 exercises the Ahrens boost, k >= 1 the Marsaglia–Tsang
	// squeeze; k = 1 is exponential.
	for _, p := range []struct{ k, theta float64 }{{0.5, 1}, {1, 0.5}, {3, 2}, {9.5, 0.1}} {
		ksCheck(t, "gamma",
			func(r *mathutil.RNG) float64 { return SampleGamma(r, p.k, p.theta) },
			GammaCDF(p.k, p.theta))
	}
}

// TestGammaCDFAgainstExponential pins the incomplete-gamma evaluation:
// P(1, x) must equal 1 - e^{-x} to near machine precision on both the
// series (x < 2) and continued-fraction (x >= 2) branches.
func TestGammaCDFAgainstExponential(t *testing.T) {
	g := GammaCDF(1, 1)
	e := ExpCDF(1)
	for _, x := range []float64{0.01, 0.5, 1, 1.9, 2.1, 5, 20} {
		if diff := math.Abs(g(x) - e(x)); diff > 1e-12 {
			t.Fatalf("P(1,%g) = %.15f vs 1-e^-x = %.15f (diff %g)", x, g(x), e(x), diff)
		}
	}
}

// TestMomentTolerances checks sample mean and variance against the
// analytic moments. The tolerance is 5 standard errors of each
// estimator — deterministic under the pinned seed, and a fresh seed
// would cross it with probability < 1e-5 per check.
func TestMomentTolerances(t *testing.T) {
	check := func(name string, sample func(*mathutil.RNG) float64, wantMean, wantVar float64) {
		t.Helper()
		rng := mathutil.NewStream(77, 9)
		xs := make([]float64, ksN)
		for i := range xs {
			xs[i] = sample(rng)
		}
		mean := mathutil.Mean(xs)
		sd := mathutil.StdDev(xs)
		variance := sd * sd
		// SE(mean) = σ/√n; SE(s²) ≈ σ²√(2/(n-1)) for near-normal, use
		// a generous heavy-tail-safe 5× band on both.
		seMean := math.Sqrt(wantVar / ksN)
		seVar := wantVar * math.Sqrt(2/float64(ksN-1))
		if math.Abs(mean-wantMean) > 5*seMean {
			t.Fatalf("%s: mean %.5f want %.5f ± %.5f", name, mean, wantMean, 5*seMean)
		}
		if math.Abs(variance-wantVar) > 8*seVar {
			t.Fatalf("%s: var %.5f want %.5f ± %.5f", name, variance, wantVar, 8*seVar)
		}
	}
	check("exp(2)", func(r *mathutil.RNG) float64 { return SampleExp(r, 2) }, 0.5, 0.25)
	check("gamma(3,0.5)", func(r *mathutil.RNG) float64 { return SampleGamma(r, 3, 0.5) }, 1.5, 0.75)
	g15 := math.Gamma(1.5)
	check("weibull(2,1)", func(r *mathutil.RNG) float64 { return SampleWeibull(r, 2, 1) },
		g15, math.Gamma(2)-g15*g15)
}

// TestSamplersSchedulingIndependent regenerates each sampler's
// sequence under GOMAXPROCS 1, 4 and 16 and requires bit-identical
// output — the counter-based-stream contract the whole workload
// engine's determinism rests on.
func TestSamplersSchedulingIndependent(t *testing.T) {
	gen := func() []float64 {
		rng := mathutil.NewStream(99, 3)
		xs := make([]float64, 300)
		for i := range xs {
			switch i % 3 {
			case 0:
				xs[i] = SampleExp(rng, 1.5)
			case 1:
				xs[i] = SampleGamma(rng, 0.7, 2)
			default:
				xs[i] = SampleWeibull(rng, 1.3, 0.5)
			}
		}
		return xs
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var ref []float64
	for _, procs := range []int{1, 4, 16} {
		runtime.GOMAXPROCS(procs)
		xs := gen()
		if ref == nil {
			ref = xs
			continue
		}
		for i := range xs {
			if xs[i] != ref[i] {
				t.Fatalf("GOMAXPROCS=%d: sample %d = %v differs from reference %v", procs, i, xs[i], ref[i])
			}
		}
	}
}

// TestKSCriticalValues pins the documented critical constants.
func TestKSCriticalValues(t *testing.T) {
	// c(0.001) = √(-ln(0.0005)/2) ≈ 1.94947.
	if c := KSCritical(1, 0.001); math.Abs(c-1.94947) > 1e-4 {
		t.Fatalf("c(0.001) = %.5f, want ≈ 1.94947", c)
	}
	// c(0.05) ≈ 1.35810.
	if c := KSCritical(1, 0.05); math.Abs(c-1.35810) > 1e-4 {
		t.Fatalf("c(0.05) = %.5f, want ≈ 1.35810", c)
	}
	// The √n scaling.
	if c1, c4 := KSCritical(100, 0.01), KSCritical(400, 0.01); math.Abs(c1/c4-2) > 1e-12 {
		t.Fatalf("critical value must scale 1/√n: %g vs %g", c1, c4)
	}
}

// TestKSStatisticDetectsWrongDistribution makes sure the test has
// power: exponential samples checked against the wrong rate must fail
// decisively.
func TestKSStatisticDetectsWrongDistribution(t *testing.T) {
	rng := mathutil.NewStream(5, 5)
	xs := make([]float64, ksN)
	for i := range xs {
		xs[i] = SampleExp(rng, 1)
	}
	if d := KSStatistic(xs, ExpCDF(2)); d < KSCritical(ksN, ksAlpha) {
		t.Fatalf("KS failed to reject rate-2 CDF for rate-1 samples (D=%g)", d)
	}
}

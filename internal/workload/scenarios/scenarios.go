// Package scenarios is the named workload matrix: parameterized
// generators widening physics coverage beyond Burns & Christon —
// scattering-media sweeps, wall-flux and radiometer workloads, moving
// hot-spot sequences that stress PackedCache invalidation — plus the
// serving-side smoke and overload profiles. Each scenario is a plain
// workload.Spec usable identically by cmd/loadgen and by tests.
package scenarios

import (
	"sort"

	"github.com/uintah-repro/rmcrt/internal/service"
	"github.com/uintah-repro/rmcrt/internal/workload"
)

// Scenario is one named, self-describing workload.
type Scenario struct {
	Name        string
	Description string
	Spec        workload.Spec
}

// all is the scenario registry, built once at init.
var all = map[string]Scenario{}

func register(s Scenario) {
	s.Spec.Name = s.Name
	all[s.Name] = s
}

// Names lists the registered scenarios, sorted.
func Names() []string {
	out := make([]string, 0, len(all))
	for name := range all {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get returns the named scenario.
func Get(name string) (Scenario, bool) {
	s, ok := all[name]
	return s, ok
}

func init() {
	// smoke: the per-PR CI profile — one client per SLO class, tiny
	// well-under-capacity jobs, seconds-scale, fully deterministic
	// accounting (distinct seeds defeat the result cache, so every
	// submission is a real solve).
	register(Scenario{
		Name:        "smoke",
		Description: "seconds-scale mixed-class determinism smoke (CI per-PR)",
		Spec: workload.Spec{Clients: []workload.ClientSpec{
			{
				Name: "interactive", Jobs: 6, Class: service.ClassInteractive,
				Arrival: workload.Arrival{Process: workload.ArrivalPoisson, RateHz: 200},
				Job: workload.JobDist{
					N:    workload.IntDist{Choices: []int{8, 10}},
					Rays: workload.IntDist{Min: 4, Max: 8}, DistinctSeeds: true,
				},
			},
			{
				Name: "batch", Jobs: 6, Class: service.ClassBatch,
				Arrival: workload.Arrival{Process: workload.ArrivalGamma, Shape: 2, Scale: 0.002},
				Job: workload.JobDist{
					Kind: service.KindUniform,
					N:    workload.IntDist{Choices: []int{10, 12}},
					Rays: workload.IntDist{Min: 5, Max: 10}, TwoLevelFraction: 0.5,
					DistinctSeeds: true,
				},
			},
			{
				Name: "scavenger", Jobs: 6, Class: service.ClassBestEffort,
				Arrival: workload.Arrival{Process: workload.ArrivalWeibull, Shape: 0.8, Scale: 0.003},
				Job: workload.JobDist{
					N:    workload.IntDist{Const: 8},
					Rays: workload.IntDist{Const: 6}, DistinctSeeds: true,
				},
			},
		}},
	})

	// scattering-sweep: radiative equilibrium (wall σT⁴ equals the
	// medium's, black walls) swept across scattering coefficients.
	// Scattering redistributes intensity but conserves energy, so divQ
	// stays ≈ 0 at every σ_s — the invariant the physics test asserts
	// through the service path.
	register(Scenario{
		Name:        "scattering-sweep",
		Description: "equilibrium scattering-media sweep (divQ ≈ 0 at every σ_s)",
		Spec: workload.Spec{Clients: []workload.ClientSpec{{
			Name: "sweep", Jobs: 10, Class: service.ClassBatch, Mode: workload.ModeASAP, Inflight: 2,
			Job: workload.JobDist{
				Kind: service.KindUniform, Kappa: 1, SigmaT4: 1,
				WallEmissivity: 1, WallSigmaT4: 1,
				Scatter: []float64{0, 0.5, 1, 2, 5},
				N:       workload.IntDist{Const: 8},
				Rays:    workload.IntDist{Const: 16}, DistinctSeeds: true,
			},
		}}},
	})

	// wall-flux: optically thin cold medium inside hot black walls. In
	// the thin limit every cell sees the walls' blackbody field, so
	// divQ ≈ −4κσT⁴_wall uniformly.
	register(Scenario{
		Name:        "wall-flux",
		Description: "thin cold medium, hot black walls (divQ ≈ −4κσT⁴_wall)",
		Spec: workload.Spec{Clients: []workload.ClientSpec{{
			Name: "wall", Jobs: 6, Class: service.ClassBatch, Mode: workload.ModeASAP, Inflight: 2,
			Job: workload.JobDist{
				Kind: service.KindUniform, Kappa: 1e-4, SigmaT4: 1e-12,
				WallEmissivity: 1, WallSigmaT4: 4,
				N:    workload.IntDist{Const: 8},
				Rays: workload.IntDist{Const: 64}, DistinctSeeds: true,
			},
		}}},
	})

	// radiometer: many small latency-sensitive point measurements of a
	// hot-wall enclosure — the interactive-heavy profile.
	register(Scenario{
		Name:        "radiometer",
		Description: "high-rate small interactive hot-wall measurements",
		Spec: workload.Spec{Clients: []workload.ClientSpec{{
			Name: "radiometer", Count: 2, Jobs: 8, Class: service.ClassInteractive,
			Arrival: workload.Arrival{Process: workload.ArrivalPoisson, RateHz: 100},
			Job: workload.JobDist{
				Kind: service.KindUniform, Kappa: 0.1, SigmaT4: 1e-12,
				WallEmissivity: 1, WallSigmaT4: 1,
				N:    workload.IntDist{Const: 6},
				Rays: workload.IntDist{Min: 8, Max: 16}, DistinctSeeds: true,
			},
		}}},
	})

	// hotspot-march: a hot spot marching through 4 positions, visiting
	// each 3 times with distinct solver seeds. Every move reshapes the
	// property fields — a new packed-table key, so PackedCache builds
	// == 4; every revisit shares the warm table, so hits == 4·(3−1).
	// Sequential (inflight 1) so the accounting is exact.
	register(Scenario{
		Name:        "hotspot-march",
		Description: "moving hot spot: packed-table invalidation per move, reuse per revisit",
		Spec: workload.Spec{Clients: []workload.ClientSpec{{
			Name: "march", Jobs: 12, Class: service.ClassBatch, Mode: workload.ModeASAP, Inflight: 1,
			Job: workload.JobDist{
				Kind: service.KindHotSpot, Kappa: 1, SigmaT4: 1,
				HotPositions: [][3]int{{0, 0, 0}, {4, 0, 0}, {4, 4, 0}, {4, 4, 4}},
				HotN:         4, HotKappa: 5, HotSigmaT4: 8,
				N:    workload.IntDist{Const: 8},
				Rays: workload.IntDist{Const: 8}, DistinctSeeds: true,
			},
		}}},
	})

	// overload: sustained above-capacity open-loop pressure from the
	// scavenger class with an interactive trickle riding on top — the
	// soak profile for per-class queue-full/deadline accounting and
	// priority differentiation.
	register(Scenario{
		Name:        "overload",
		Description: "above-capacity best-effort flood + interactive trickle (soak)",
		Spec: workload.Spec{Clients: []workload.ClientSpec{
			{
				Name: "flood", Count: 2, Jobs: 40, Class: service.ClassBestEffort,
				Arrival: workload.Arrival{Process: workload.ArrivalPoisson, RateHz: 400},
				Job: workload.JobDist{
					N:    workload.IntDist{Const: 12},
					Rays: workload.IntDist{Const: 30}, DistinctSeeds: true,
				},
			},
			{
				Name: "fg", Jobs: 10, Class: service.ClassInteractive,
				Arrival: workload.Arrival{Process: workload.ArrivalPoisson, RateHz: 50},
				Job: workload.JobDist{
					N:    workload.IntDist{Const: 8},
					Rays: workload.IntDist{Const: 8}, DistinctSeeds: true,
				},
			},
		}},
	})

	// abuse: one client hammering at ~10x the compliant interactive
	// rate with the *same* job size — the only abusive variable is the
	// rate, so the soak isolates admission. Against an edge with
	// per-client admission (-client-rate) the abuser is shed
	// 429-at-the-edge while the compliant client's latency stays near
	// its no-abuse baseline. Deadlines ride along so queue-stranded
	// abuse jobs fast-fail instead of occupying workers.
	register(Scenario{
		Name:        "abuse",
		Description: "10x-rate abusive client vs compliant interactive (admission isolation soak)",
		Spec: workload.Spec{Clients: []workload.ClientSpec{
			{
				Name: "abuser", Jobs: 60, Class: service.ClassBestEffort,
				Arrival:    workload.Arrival{Process: workload.ArrivalPoisson, RateHz: 500},
				DeadlineMs: 30000,
				Job: workload.JobDist{
					N:    workload.IntDist{Const: 8},
					Rays: workload.IntDist{Const: 8}, DistinctSeeds: true,
				},
			},
			{
				Name: "compliant", Jobs: 12, Class: service.ClassInteractive,
				Arrival: workload.Arrival{Process: workload.ArrivalPoisson, RateHz: 50},
				Job: workload.JobDist{
					N:    workload.IntDist{Const: 8},
					Rays: workload.IntDist{Const: 8}, DistinctSeeds: true,
				},
			},
		}},
	})

	// spectral-bands: K-band non-gray solves through the fused batched
	// marcher — bands ride as extra batch lanes over shared ray
	// geometry, so a K-band job costs one DDA march (not K). The sweep
	// cycles K across jobs; the wide κ ladder (spread 16) includes
	// near-transparent window bands that a gray mean coefficient would
	// hold in.
	register(Scenario{
		Name:        "spectral-bands",
		Description: "K-band spectral solves via fused batch lanes (non-gray window effect)",
		Spec: workload.Spec{Clients: []workload.ClientSpec{
			{
				Name: "bands2", Jobs: 4, Class: service.ClassBatch, Mode: workload.ModeASAP, Inflight: 2,
				Job: workload.JobDist{
					Kind: service.KindUniform, Kappa: 1, SigmaT4: 1,
					WallEmissivity: 1, WallSigmaT4: 1,
					SpectralBands: 2, SpectralSpread: 4,
					N:    workload.IntDist{Const: 8},
					Rays: workload.IntDist{Const: 12}, DistinctSeeds: true,
				},
			},
			{
				Name: "bands4", Jobs: 4, Class: service.ClassBatch, Mode: workload.ModeASAP, Inflight: 2,
				Job: workload.JobDist{
					Kind: service.KindUniform, Kappa: 1, SigmaT4: 1,
					WallEmissivity: 1, WallSigmaT4: 1,
					SpectralBands: 4, SpectralSpread: 16,
					N:    workload.IntDist{Const: 8},
					Rays: workload.IntDist{Const: 8}, DistinctSeeds: true,
				},
			},
		}},
	})

	// adaptive-budget: every job runs under an adaptive ray budget with
	// a generous max — smooth benchmark media converge far below the
	// cap, so the scenario demonstrates (and its test asserts, via the
	// job-status rays_saved counter) that adaptive budgets trace
	// measurably fewer rays than the fixed budget they're priced at.
	register(Scenario{
		Name:        "adaptive-budget",
		Description: "adaptive ray budgets: SEM-converged early stop vs fixed-budget pricing",
		Spec: workload.Spec{Clients: []workload.ClientSpec{{
			Name: "adaptive", Jobs: 6, Class: service.ClassBatch, Mode: workload.ModeASAP, Inflight: 2,
			Job: workload.JobDist{
				AdaptiveFraction: 1, AdaptiveRelTol: 0.05, AdaptiveMinRays: 8,
				N:    workload.IntDist{Const: 10},
				Rays: workload.IntDist{Const: 64}, DistinctSeeds: true,
			},
		}}},
	})

	// mixed: every arrival process, mode and class in one workload —
	// the golden-trace profile exercising the full generator surface.
	register(Scenario{
		Name:        "mixed",
		Description: "all arrival processes, modes and classes (golden-trace profile)",
		Spec: workload.Spec{Clients: []workload.ClientSpec{
			{
				Name: "poisson-open", Count: 2, Jobs: 5, Class: service.ClassInteractive,
				Arrival: workload.Arrival{Process: workload.ArrivalPoisson, RateHz: 150},
				Job: workload.JobDist{
					N:    workload.IntDist{Choices: []int{8, 10, 12}, Weights: []float64{2, 1, 1}},
					Rays: workload.IntDist{Min: 4, Max: 12}, DistinctSeeds: true,
				},
			},
			{
				Name: "gamma-closed", Jobs: 6, Mode: workload.ModeClosed, Inflight: 2,
				ClassMix: map[string]float64{service.ClassBatch: 3, service.ClassBestEffort: 1},
				Arrival:  workload.Arrival{Process: workload.ArrivalGamma, Shape: 0.7, Scale: 0.004},
				Job: workload.JobDist{
					Kind: service.KindUniform, Kappa: 2, SigmaT4: 1,
					Scatter: []float64{0, 1},
					N:       workload.IntDist{Const: 10},
					Rays:    workload.IntDist{Const: 10}, TwoLevelFraction: 0.4,
					DistinctSeeds: true,
				},
			},
			{
				Name: "weibull-burst", Jobs: 6, Class: service.ClassBestEffort,
				Arrival: workload.Arrival{Process: workload.ArrivalWeibull, Shape: 0.6, Scale: 0.002},
				Job: workload.JobDist{
					Kind:         service.KindHotSpot,
					HotPositions: [][3]int{{0, 0, 0}, {2, 2, 2}},
					HotN:         3, HotKappa: 4, HotSigmaT4: 6,
					N:    workload.IntDist{Const: 8},
					Rays: workload.IntDist{Const: 6}, DistinctSeeds: true,
				},
			},
		}},
	})
}

package scenarios

import (
	"context"
	"math"
	"testing"
	"time"

	"github.com/uintah-repro/rmcrt/internal/service"
	"github.com/uintah-repro/rmcrt/internal/workload"
)

func TestAllScenariosGenerate(t *testing.T) {
	for _, name := range Names() {
		s, ok := Get(name)
		if !ok {
			t.Fatalf("registry lost %q", name)
		}
		if s.Description == "" {
			t.Fatalf("%s has no description", name)
		}
		if s.Spec.Name != name {
			t.Fatalf("%s spec name is %q", name, s.Spec.Name)
		}
		plan, err := workload.Generate(s.Spec, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(plan.Subs) != s.Spec.TotalJobs() {
			t.Fatalf("%s: %d subs, want %d", name, len(plan.Subs), s.Spec.TotalJobs())
		}
		for i := range plan.Subs {
			if err := plan.Subs[i].Spec.Validate(); err != nil {
				t.Fatalf("%s sub %d: %v", name, i, err)
			}
		}
	}
}

// solveAll pushes every submission through an in-process manager
// sequentially — the service path (Submit → Wait → Result), not a
// direct solver call — and returns each job's divQ field keyed by
// submission index.
func solveAll(t *testing.T, mgr *service.Manager, plan *workload.Plan) []solved {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	out := make([]solved, 0, len(plan.Subs))
	for i := range plan.Subs {
		sub := plan.Subs[i]
		st, err := mgr.Submit(sub.Spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if st, err = mgr.Wait(ctx, st.ID); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if st.State != service.StateDone {
			t.Fatalf("job %d finished %s: %s", i, st.State, st.Error)
		}
		divQ, _, ok, err := mgr.Result(st.ID)
		if err != nil || !ok || divQ == nil {
			t.Fatalf("result %d: ok=%v err=%v", i, ok, err)
		}
		stats := fieldStats(divQ.Data())
		out = append(out, solved{sub: sub, stats: stats})
	}
	return out
}

type solved struct {
	sub   workload.Submission
	stats stats
}

type stats struct {
	min, max, mean float64
}

func fieldStats(data []float64) stats {
	s := stats{min: math.Inf(1), max: math.Inf(-1)}
	for _, v := range data {
		s.min = math.Min(s.min, v)
		s.max = math.Max(s.max, v)
		s.mean += v
	}
	s.mean /= float64(len(data))
	return s
}

func newTestManager(t *testing.T) *service.Manager {
	t.Helper()
	mgr := service.New(service.Config{Workers: 2, QueueDepth: 64})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = mgr.Close(ctx)
	})
	return mgr
}

// TestScatteringSweepEquilibrium: in radiative equilibrium (black
// walls at the medium's own σT⁴) every ray integrates to exactly the
// blackbody intensity whatever path scattering sends it on, so divQ
// must vanish at every scattering coefficient — not just on average
// but cell by cell, far below the 4κσT⁴ = 4 emission scale.
func TestScatteringSweepEquilibrium(t *testing.T) {
	s, _ := Get("scattering-sweep")
	plan, err := workload.Generate(s.Spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	mgr := newTestManager(t)
	scatters := map[float64]bool{}
	for _, r := range solveAll(t, mgr, plan) {
		scatters[r.sub.Spec.ScatterCoeff] = true
		emission := 4 * r.sub.Spec.Kappa * r.sub.Spec.SigmaT4
		bound := 0.02 * emission
		if math.Abs(r.stats.min) > bound || math.Abs(r.stats.max) > bound {
			t.Fatalf("σ_s=%g: divQ ∈ [%g, %g], want |divQ| < %g (equilibrium)",
				r.sub.Spec.ScatterCoeff, r.stats.min, r.stats.max, bound)
		}
		t.Logf("σ_s=%g: divQ ∈ [%.3g, %.3g] (emission scale %g)",
			r.sub.Spec.ScatterCoeff, r.stats.min, r.stats.max, emission)
	}
	// The sweep must actually have swept.
	for _, want := range []float64{0, 0.5, 1, 2, 5} {
		if !scatters[want] {
			t.Fatalf("sweep never drew σ_s=%g (got %v)", want, scatters)
		}
	}
}

// TestWallFluxBlackbody: an optically thin cold medium inside hot
// black walls absorbs the walls' unattenuated blackbody field, so
// every cell's divQ ≈ −4κσT⁴_wall.
func TestWallFluxBlackbody(t *testing.T) {
	s, _ := Get("wall-flux")
	plan, err := workload.Generate(s.Spec, 13)
	if err != nil {
		t.Fatal(err)
	}
	mgr := newTestManager(t)
	for _, r := range solveAll(t, mgr, plan) {
		want := -4 * r.sub.Spec.Kappa * r.sub.Spec.WallSigmaT4
		tol := 0.05 * math.Abs(want)
		if math.Abs(r.stats.min-want) > tol || math.Abs(r.stats.max-want) > tol {
			t.Fatalf("divQ ∈ [%g, %g], want ≈ %g ± %g (thin-limit wall absorption)",
				r.stats.min, r.stats.max, want, tol)
		}
	}
}

// TestHotSpotMarchPackedCache: the marching hot spot reshapes the
// property fields at every move — a brand-new packed-table key — while
// revisits (distinct solver seeds, same fields) must land on the warm
// table. 12 sequential jobs cycling 4 positions → exactly 4 builds and
// 4·(3−1) = 8 hits.
func TestHotSpotMarchPackedCache(t *testing.T) {
	s, _ := Get("hotspot-march")
	plan, err := workload.Generate(s.Spec, 17)
	if err != nil {
		t.Fatal(err)
	}
	mgr := newTestManager(t)
	results := solveAll(t, mgr, plan)

	if builds := mgr.Packed().Builds(); builds != 4 {
		t.Fatalf("packed builds = %d, want 4 (one per hot-spot position)", builds)
	}
	if hits := mgr.Packed().Hits(); hits != 8 {
		t.Fatalf("packed hits = %d, want 8 (two revisits per position)", hits)
	}

	// The spot is physically there: its extra emission drives divQ
	// positive inside the spot relative to the ambient medium.
	for i, r := range results {
		if r.stats.max <= r.stats.min {
			t.Fatalf("job %d: flat divQ field [%g, %g] — hot spot missing", i, r.stats.min, r.stats.max)
		}
	}
}

// TestSpectralBandsEquilibrium: the spectral scenario runs at
// radiative equilibrium (black walls at the medium's own σT⁴), and
// equilibrium holds band by band — each band sees walls and medium
// emitting the same w_k-scaled blackbody field whatever its κ_k — so
// the band-summed divQ must vanish for every K in the sweep.
func TestSpectralBandsEquilibrium(t *testing.T) {
	s, _ := Get("spectral-bands")
	plan, err := workload.Generate(s.Spec, 23)
	if err != nil {
		t.Fatal(err)
	}
	mgr := newTestManager(t)
	bands := map[int]bool{}
	for _, r := range solveAll(t, mgr, plan) {
		bands[r.sub.Spec.SpectralBands] = true
		emission := 4 * r.sub.Spec.Kappa * r.sub.Spec.SigmaT4
		bound := 0.05 * emission
		if math.Abs(r.stats.min) > bound || math.Abs(r.stats.max) > bound {
			t.Fatalf("K=%d: divQ ∈ [%g, %g], want |divQ| < %g (per-band equilibrium)",
				r.sub.Spec.SpectralBands, r.stats.min, r.stats.max, bound)
		}
	}
	for _, want := range []int{2, 4} {
		if !bands[want] {
			t.Fatalf("scenario never solved K=%d (got %v)", want, bands)
		}
	}
}

// TestAdaptiveBudgetSavesRays: every adaptive-budget job is priced at
// its AdaptiveMaxRays cap but the smooth benchmark medium converges
// far below it, so each job's status must report rays actually saved.
func TestAdaptiveBudgetSavesRays(t *testing.T) {
	s, _ := Get("adaptive-budget")
	plan, err := workload.Generate(s.Spec, 29)
	if err != nil {
		t.Fatal(err)
	}
	mgr := newTestManager(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i := range plan.Subs {
		sub := plan.Subs[i]
		if sub.Spec.AdaptiveRelTol <= 0 || sub.Spec.AdaptiveMaxRays != sub.Spec.Rays {
			t.Fatalf("sub %d: adaptive fields not mapped: %+v", i, sub.Spec)
		}
		st, err := mgr.Submit(sub.Spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if st, err = mgr.Wait(ctx, st.ID); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if st.State != service.StateDone {
			t.Fatalf("job %d finished %s: %s", i, st.State, st.Error)
		}
		if st.RaysSaved <= 0 {
			t.Fatalf("job %d saved %d rays, want > 0 (adaptive early stop)", i, st.RaysSaved)
		}
		t.Logf("job %d: %d rays saved of %d budgeted", i,
			st.RaysSaved, sub.Spec.Cells()*int64(sub.Spec.AdaptiveMaxRays))
	}
}

// TestSmokeDeterministicAccounting: the CI smoke profile's distinct
// seeds defeat the result cache, so counts are exact: every submission
// is a real solve and every class finishes all its jobs.
func TestSmokeDeterministicAccounting(t *testing.T) {
	s, _ := Get("smoke")
	plan, err := workload.Generate(s.Spec, 19)
	if err != nil {
		t.Fatal(err)
	}
	mgr := newTestManager(t)
	perClass := map[string]int{}
	for _, r := range solveAll(t, mgr, plan) {
		perClass[r.sub.Class]++
	}
	for _, class := range service.Classes() {
		if perClass[class] != 6 {
			t.Fatalf("class %s completed %d jobs, want 6 (%v)", class, perClass[class], perClass)
		}
	}
}

package rmcrt_test

import (
	"math"
	"testing"

	rmcrt "github.com/uintah-repro/rmcrt"
)

// The facade tests exercise the public API exactly as a downstream user
// would — every entry point the README shows, through the re-exports
// only.

func TestPublicAPIQuickstart(t *testing.T) {
	dom, g, err := rmcrt.NewBenchmarkDomain(9)
	if err != nil {
		t.Fatal(err)
	}
	opts := rmcrt.DefaultOptions()
	opts.NRays = 8
	divQ, err := dom.SolveRegion(g.Levels[0].IndexBox(), &opts)
	if err != nil {
		t.Fatal(err)
	}
	if divQ.At(rmcrt.IV(4, 4, 4)) <= 0 {
		t.Error("benchmark center should be a net emitter")
	}
	q, err := dom.SolveWallFlux(rmcrt.XMinus, &opts)
	if err != nil {
		t.Fatal(err)
	}
	if q <= 0 {
		t.Error("wall should receive flux")
	}
}

func TestPublicAPIMultiLevel(t *testing.T) {
	g, mk, err := rmcrt.NewMultiLevelBenchmark(16, 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := g.Finest().Patches[0]
	dom, err := mk(p)
	if err != nil {
		t.Fatal(err)
	}
	opts := rmcrt.DefaultOptions()
	opts.NRays = 4
	opts.HaloCells = 2
	if _, err := dom.SolveRegion(p.Cells, &opts); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIRuntime(t *testing.T) {
	g, err := rmcrt.NewGrid(rmcrt.V3(0, 0, 0), rmcrt.V3(1, 1, 1),
		rmcrt.GridSpec{Resolution: rmcrt.IV(8, 8, 8), PatchSize: rmcrt.IV(8, 8, 8)},
		rmcrt.GridSpec{Resolution: rmcrt.IV(16, 16, 16), PatchSize: rmcrt.IV(8, 8, 8)},
	)
	if err != nil {
		t.Fatal(err)
	}
	s := rmcrt.NewScheduler(0, 2, g,
		rmcrt.NewDataWarehouse(1), rmcrt.NewDataWarehouse(0), rmcrt.NewComm(1))
	dev := rmcrt.NewDevice(rmcrt.K20XMemory, rmcrt.NewK20X(1e8))
	s.AttachGPU(dev, rmcrt.NewGPUDataWarehouse(dev))
	opts := rmcrt.DefaultOptions()
	opts.NRays = 2
	solve := &rmcrt.GPURadiationSolve{Grid: g, Opts: opts, Props: rmcrt.FillBenchmark}
	if err := solve.Register(s); err != nil {
		t.Fatal(err)
	}
	st, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if st.GPUTasksRun != 8 {
		t.Errorf("GPU tasks = %d, want 8", st.GPUTasksRun)
	}
}

func TestPublicAPIBaselinesAndScaling(t *testing.T) {
	// DOM through the facade.
	_, g, err := rmcrt.NewBenchmarkDomain(8)
	if err != nil {
		t.Fatal(err)
	}
	lvl := g.Levels[0]
	dp := &rmcrt.DOMProblem{Level: lvl}
	dp.Abskg, dp.SigmaT4OverPi, dp.CellType = rmcrt.FillBenchmark(lvl, lvl.IndexBox())
	res, err := rmcrt.SolveDOM(dp, rmcrt.S2())
	if err != nil {
		t.Fatal(err)
	}
	par, err := rmcrt.SolveDOMParallel(dp, rmcrt.S2())
	if err != nil {
		t.Fatal(err)
	}
	c := rmcrt.IV(4, 4, 4)
	if res.DivQ.At(c) != par.DivQ.At(c) {
		t.Error("serial and parallel DOM disagree through the facade")
	}
	// Scaling study through the facade.
	cfg := rmcrt.DefaultScalingConfig()
	series, err := rmcrt.StrongScaling(cfg, rmcrt.LargeProblem(16), []int{4096, 8192})
	if err != nil {
		t.Fatal(err)
	}
	if e := rmcrt.Efficiency(series.Points[0], series.Points[1]); e < 0.9 {
		t.Errorf("efficiency 4096->8192 = %.2f", e)
	}
	rows := rmcrt.TableI(rmcrt.Titan(), []int{512})
	if math.Abs(rows[0].Speedup-4.4) > 0.5 {
		t.Errorf("Table I 512-node speedup = %.2f", rows[0].Speedup)
	}
}

func TestPublicAPIProduction(t *testing.T) {
	cfg := rmcrt.DefaultProductionConfig()
	cfg.Steps = 2
	cfg.RadPeriod = 2
	cfg.Rays = 2
	res, err := rmcrt.RunProduction(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 2 || res.RadSolves != 1 {
		t.Errorf("history=%d radSolves=%d", len(res.History), res.RadSolves)
	}
}

func TestPublicAPIArchive(t *testing.T) {
	arch, err := rmcrt.CreateArchive(t.TempDir(), "facade")
	if err != nil {
		t.Fatal(err)
	}
	if got := arch.Index().Title; got != "facade" {
		t.Errorf("title = %q", got)
	}
}

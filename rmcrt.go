// Package rmcrt is the public API of the Uintah RMCRT reproduction: a
// reverse Monte Carlo ray tracing radiation solver with adaptive mesh
// refinement, the mini-Uintah runtime it runs on (AMR grid,
// DataWarehouse, DAG task scheduler, simulated MPI and GPU), the
// discrete-ordinates baseline, and the Titan-scale performance models
// that regenerate the paper's figures.
//
// Quick start (the Burns & Christon benchmark on one level):
//
//	dom, _, err := rmcrt.NewBenchmarkDomain(41)
//	if err != nil { ... }
//	opts := rmcrt.DefaultOptions()
//	divQ, err := dom.SolveRegion(dom.Levels[0].Level.IndexBox(), &opts)
//
// The subpackage structure mirrors the paper's systems; see DESIGN.md.
// This package re-exports the most commonly used entry points so that
// applications need a single import.
package rmcrt

import (
	"github.com/uintah-repro/rmcrt/internal/arches"
	"github.com/uintah-repro/rmcrt/internal/dom"
	"github.com/uintah-repro/rmcrt/internal/field"
	"github.com/uintah-repro/rmcrt/internal/grid"
	"github.com/uintah-repro/rmcrt/internal/mathutil"
	"github.com/uintah-repro/rmcrt/internal/perfmodel"
	"github.com/uintah-repro/rmcrt/internal/rmcrt"
	"github.com/uintah-repro/rmcrt/internal/sim"
)

// --- Core ray tracer ---------------------------------------------------

// Options configures an RMCRT solve (rays per cell, extinction
// threshold, halo width, wall properties, scattering).
type Options = rmcrt.Options

// Domain is the tracer's view of the AMR hierarchy.
type Domain = rmcrt.Domain

// LevelData is one level's radiative state (κ, σT⁴/π, cellType) over a
// region of interest.
type LevelData = rmcrt.LevelData

// WallFace identifies one face of the enclosure for boundary-flux
// queries.
type WallFace = rmcrt.WallFace

// Enclosure faces.
const (
	XMinus = rmcrt.XMinus
	XPlus  = rmcrt.XPlus
	YMinus = rmcrt.YMinus
	YPlus  = rmcrt.YPlus
	ZMinus = rmcrt.ZMinus
	ZPlus  = rmcrt.ZPlus
)

// SigmaSB is the Stefan–Boltzmann constant (W/m²K⁴).
const SigmaSB = rmcrt.SigmaSB

// DefaultOptions returns the paper's benchmark configuration (100 rays
// per cell, 1e-4 threshold, cold black walls, 4-cell halo).
func DefaultOptions() Options { return rmcrt.DefaultOptions() }

// NewBenchmarkDomain builds the single-level Burns & Christon benchmark
// at resolution n³.
func NewBenchmarkDomain(n int) (*Domain, *Grid, error) { return rmcrt.NewBenchmarkDomain(n) }

// NewMultiLevelBenchmark builds the paper's 2-level benchmark (fine
// fineN³ in patchN³ patches, coarse fineN/rr³) and returns a per-patch
// domain constructor.
func NewMultiLevelBenchmark(fineN, patchN, rr, halo int) (*Grid, func(p *Patch) (*Domain, error), error) {
	return rmcrt.NewMultiLevelBenchmark(fineN, patchN, rr, halo)
}

// BenchmarkKappa is the Burns & Christon absorption coefficient.
func BenchmarkKappa(x, y, z float64) float64 { return rmcrt.BenchmarkKappa(x, y, z) }

// FillBenchmark fills benchmark properties over a window.
var FillBenchmark = rmcrt.FillBenchmark

// FluxMap is a 2-D incident-flux map over one enclosure face.
type FluxMap = rmcrt.FluxMap

// TraceMetrics is the tracing engine's metrics family (tiles, rays,
// steps, per-tile timings); attach one to Domain.Metrics to observe a
// solve.
type TraceMetrics = rmcrt.TraceMetrics

// NewTraceMetrics registers the tracing family in a metrics registry
// (idempotently, so many domains can share one registry).
var NewTraceMetrics = rmcrt.NewTraceMetrics

// SpectralDomain runs the banded (non-gray) RMCRT — the paper's
// future-work wavelength loop.
type SpectralDomain = rmcrt.SpectralDomain

// SpectralBand is one band of the box model.
type SpectralBand = rmcrt.Band

// NewGrayAsSpectral wraps a gray domain as a 1-band spectral domain.
var NewGrayAsSpectral = rmcrt.NewGrayAsSpectral

// ForwardResult carries a forward-MCRT solve's outputs.
type ForwardResult = rmcrt.ForwardResult

// BoilerSpec configures the synthetic boiler geometry; DefaultBoiler
// returns utility-boiler-like parameters.
type BoilerSpec = rmcrt.BoilerSpec

// DefaultBoiler returns representative oxy-coal boiler parameters.
func DefaultBoiler() BoilerSpec { return rmcrt.DefaultBoiler() }

// NewBoilerDomain builds the boiler interior (flame core, tube banks)
// as a single-level tracer domain.
var NewBoilerDomain = rmcrt.NewBoilerDomain

// BuildBoiler fills boiler properties over a window.
var BuildBoiler = rmcrt.BuildBoiler

// DistributedRadiationSolve registers one rank's share of the
// whole-machine radiation timestep (halo exchange, rank-local
// coarsening, coarse all-gather, per-rank ray trace).
type DistributedRadiationSolve = rmcrt.DistributedRadiationSolve

// AlignCoarseOwnership makes coarse patches rank-local to the fine
// block above them.
var AlignCoarseOwnership = rmcrt.AlignCoarseOwnership

// --- Grid and fields ----------------------------------------------------

// Grid is the structured AMR hierarchy (coarsest level first).
type Grid = grid.Grid

// Level is one uniform mesh level.
type Level = grid.Level

// Patch is a box of cells, the unit of work distribution.
type Patch = grid.Patch

// IntVector is a 3-component cell index.
type IntVector = grid.IntVector

// Box is a half-open box of cell indices.
type Box = grid.Box

// Spec describes one level when building a grid.
type GridSpec = grid.Spec

// Vec3 is a physical-space 3-vector.
type Vec3 = mathutil.Vec3

// NewGrid builds an AMR grid over [lo, hi] from level specs (coarsest
// first).
func NewGrid(lo, hi Vec3, specs ...GridSpec) (*Grid, error) { return grid.New(lo, hi, specs...) }

// IV constructs an IntVector.
func IV(x, y, z int) IntVector { return grid.IV(x, y, z) }

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return mathutil.V3(x, y, z) }

// CellField is a dense cell-centered float64 variable.
type CellField = field.CC[float64]

// CellTypeField is a dense cell-centered cell-type variable.
type CellTypeField = field.CC[field.CellType]

// Cell types.
const (
	Flow      = field.Flow
	Boundary  = field.Boundary
	Intrusion = field.Intrusion
)

// --- Baseline and coupling ----------------------------------------------

// DOMProblem is a discrete-ordinates baseline configuration.
type DOMProblem = dom.Problem

// DOMQuadrature is an angular quadrature set for DOM.
type DOMQuadrature = dom.Quadrature

// SolveDOM runs the discrete ordinates baseline; SolveDOMParallel is
// the wavefront-parallel (KBA-style) variant with bitwise-identical
// results.
var (
	SolveDOM         = dom.Solve
	SolveDOMParallel = dom.SolveParallel
)

// S2 and S4 are level-symmetric quadrature sets; Tn builds product sets
// of arbitrary order.
var (
	S2 = dom.S2
	S4 = dom.S4
	Tn = dom.Tn
)

// EnergySolver is the mini-ARCHES energy equation solver coupled to
// RMCRT radiation.
type EnergySolver = arches.Solver

// EnergyConfig configures the energy solver.
type EnergyConfig = arches.Config

// NewEnergySolver builds an energy solver.
var NewEnergySolver = arches.NewSolver

// DefaultEnergyConfig returns furnace-gas-like defaults.
func DefaultEnergyConfig() EnergyConfig { return arches.DefaultConfig() }

// CheckpointPolicy says when EnergySolver.Run snapshots state into an
// archive (every N steps, on failure, with a retention bound).
type CheckpointPolicy = arches.CheckpointPolicy

// ResumeSolverFrom reopens a checkpoint archive after a crash,
// quarantines torn checkpoints, and restarts from the newest loadable
// one — the resumed run continues bit-identical to an uninterrupted
// run.
var ResumeSolverFrom = arches.ResumeFrom

// --- Performance models and scaling studies ------------------------------

// Machine is a node/interconnect model; Titan returns the paper's
// system.
type Machine = perfmodel.Machine

// Titan returns the DOE Titan XK7 machine model.
func Titan() Machine { return perfmodel.Titan() }

// ScalingProblem describes an RMCRT benchmark configuration for the
// scaling studies.
type ScalingProblem = perfmodel.Problem

// MediumProblem and LargeProblem are the paper's two benchmark sizes.
var (
	MediumProblem = perfmodel.Medium
	LargeProblem  = perfmodel.Large
)

// ScalingConfig controls a strong-scaling simulation.
type ScalingConfig = sim.Config

// ScalingSeries is one strong-scaling curve.
type ScalingSeries = sim.Series

// ScalingPoint is one measurement.
type ScalingPoint = sim.Point

// DefaultScalingConfig returns Titan with the improved infrastructure.
func DefaultScalingConfig() ScalingConfig { return sim.DefaultConfig() }

// StrongScaling sweeps GPU counts for one problem (Figures 2 and 3).
var StrongScaling = sim.StrongScaling

// Efficiency computes parallel efficiency between two points (paper
// equation 3).
var Efficiency = sim.Efficiency

// TableI regenerates the local-communication comparison of Table I.
var TableI = sim.TableI

// TableIRow is one column of Table I.
type TableIRow = sim.TableIRow

// PowersOf2 enumerates GPU counts.
var PowersOf2 = sim.PowersOf2

package rmcrt

import (
	"github.com/uintah-repro/rmcrt/internal/alloc"
	"github.com/uintah-repro/rmcrt/internal/commpool"
	"github.com/uintah-repro/rmcrt/internal/dw"
	"github.com/uintah-repro/rmcrt/internal/gpu"
	"github.com/uintah-repro/rmcrt/internal/gpudw"
	"github.com/uintah-repro/rmcrt/internal/metrics"
	"github.com/uintah-repro/rmcrt/internal/production"
	"github.com/uintah-repro/rmcrt/internal/rmcrt"
	"github.com/uintah-repro/rmcrt/internal/sched"
	"github.com/uintah-repro/rmcrt/internal/service"
	"github.com/uintah-repro/rmcrt/internal/simmpi"
	"github.com/uintah-repro/rmcrt/internal/uda"
)

// --- Mini-Uintah runtime -------------------------------------------------
//
// These re-exports expose the runtime system the radiation model runs
// on: the DAG task scheduler with its staged GPU queues, the host and
// GPU DataWarehouses (including the per-level database of contribution
// ii), the simulated MPI layer, and the wait-free communication-record
// pool of contribution iii.

// Scheduler executes one rank's task graph for one timestep.
type Scheduler = sched.Scheduler

// Task is one schedulable unit of work.
type Task = sched.Task

// TaskDep declares a "requires" edge; TaskCompute a "computes".
type (
	TaskDep     = sched.Dep
	TaskCompute = sched.Compute
)

// TaskContext is handed to task bodies.
type TaskContext = sched.Context

// GPUStages are the H2D/kernel/D2H phases of a device task.
type GPUStages = sched.GPUStages

// ExternalRecv declares a variable arriving from another rank.
type ExternalRecv = sched.ExternalRecv

// GhostGlobal requests a whole-level ("infinite ghost cells") window.
const GhostGlobal = sched.GhostGlobal

// NewScheduler constructs a scheduler for one rank.
var NewScheduler = sched.NewScheduler

// RunRanks drives one scheduler per rank concurrently.
var RunRanks = sched.RunRanks

// DataWarehouse is one generation of the variable store.
type DataWarehouse = dw.DW

// NewDataWarehouse creates an empty warehouse generation.
var NewDataWarehouse = dw.New

// Device is the simulated K20X-class GPU.
type Device = gpu.Device

// DeviceCostModel prices simulated device operations.
type DeviceCostModel = gpu.CostModel

// NewDevice creates a device with a memory capacity and cost model.
var NewDevice = gpu.NewDevice

// NewK20X returns the Titan device cost model.
var NewK20X = gpu.NewK20X

// K20XMemory is the 6 GB global memory of a Tesla K20X.
const K20XMemory = gpu.K20XMemory

// GPUDataWarehouse is the device-side warehouse with the shared
// per-level database.
type GPUDataWarehouse = gpudw.DW

// NewGPUDataWarehouse binds a GPU warehouse to a device.
var NewGPUDataWarehouse = gpudw.New

// Comm is the in-process message-passing layer with MPI semantics.
type Comm = simmpi.Comm

// NewComm creates a communicator over n ranks.
var NewComm = simmpi.NewComm

// CommPool is the wait-free communication-record pool (Algorithm 1).
type CommPool = commpool.Pool

// CommRecord is one outstanding communication.
type CommRecord = commpool.Record

// NewCommPool returns an empty wait-free pool.
var NewCommPool = commpool.NewPool

// LegacyRequestVector is the pre-improvement container, for comparison.
type LegacyRequestVector = commpool.LegacyVector

// NewLegacyRequestVector returns an empty legacy container.
var NewLegacyRequestVector = commpool.NewLegacyVector

// GPURadiationSolve assembles the GPU multi-level RMCRT timestep as a
// task graph over a scheduler (properties -> coarsen -> staged GPU ray
// trace per patch).
type GPURadiationSolve = rmcrt.GPURadiationSolve

// PropsFunc supplies radiative properties to the radiation task graph.
type PropsFunc = rmcrt.PropsFunc

// Variable labels used by the radiation task graph.
const (
	LabelAbskg   = rmcrt.LabelAbskg
	LabelSigmaT4 = rmcrt.LabelSigmaT4
	LabelCellTyp = rmcrt.LabelCellTyp
	LabelDivQ    = rmcrt.LabelDivQ
)

// --- Output archive and production driver --------------------------------

// Archive is the UDA-style data archive (timestep output, checkpoints).
type Archive = uda.Archive

// CreateArchive makes a new archive directory; OpenArchive loads one;
// OpenRepairArchive additionally quarantines torn timesteps (the
// crash-recovery open path).
var (
	CreateArchive     = uda.Create
	OpenArchive       = uda.Open
	OpenRepairArchive = uda.OpenRepair
)

// Typed archive corruption errors: a torn or damaged payload always
// fails as ErrArchiveCorrupt (with ErrArchiveTruncated /
// ErrArchiveChecksum as the specific causes); a strict reader rejects
// non-finite cells with ErrArchiveNonFinite.
var (
	ErrArchiveCorrupt   = uda.ErrCorrupt
	ErrArchiveTruncated = uda.ErrTruncated
	ErrArchiveChecksum  = uda.ErrChecksum
	ErrArchiveNonFinite = uda.ErrNonFinite
)

// ProductionConfig configures the coupled energy+radiation driver.
type ProductionConfig = production.Config

// ProductionResult carries a production run's history and final state.
type ProductionResult = production.Result

// DefaultProductionConfig returns a laptop-scale hot-box run.
var DefaultProductionConfig = production.DefaultConfig

// RunProduction executes the coupled multi-timestep simulation.
var RunProduction = production.Run

// Radiometer is a virtual solid-angle-limited flux instrument.
type Radiometer = rmcrt.Radiometer

// RadiometerReading is the instrument output.
type RadiometerReading = rmcrt.RadiometerReading

// MemoryTracker records per-tag allocation peaks across scaling runs.
type MemoryTracker = alloc.Tracker

// NewMemoryTracker returns an empty tracker; FindNonScaling compares
// snapshots across node counts.
var (
	NewMemoryTracker = alloc.NewTracker
	FindNonScaling   = alloc.FindNonScaling
)

// MemorySnapshot is one run's per-tag peaks.
type MemorySnapshot = alloc.Snapshot

// --- Radiation service and observability ---------------------------------
//
// These re-exports expose the rmcrtd serving layer: a job manager that
// runs RMCRT solves on a bounded worker pool with admission control,
// single-flight coalescing, and a content-addressed result cache, plus
// the metrics registry the runtime publishes into.

// SolveService runs radiation solves as managed jobs.
type SolveService = service.Manager

// SolveServiceConfig sizes the worker pool, queue, and cache.
type SolveServiceConfig = service.Config

// SolveSpec describes one solve request (benchmark or uniform medium,
// one or two levels).
type SolveSpec = service.Spec

// SolveJobStatus is a point-in-time snapshot of a job.
type SolveJobStatus = service.JobStatus

// NewSolveService starts the worker pool; RecoverSolveService is the
// same start with journal replay surfaced as an error instead of a
// panic.
var (
	NewSolveService     = service.New
	RecoverSolveService = service.Recover
)

// SolveRecoveryStats reports what a journal replay rebuilt at startup.
type SolveRecoveryStats = service.RecoveryStats

// JobJournal is the service's write-ahead job journal; JournalRecord is
// one entry; ErrTornJournal marks a journal with a truncated or corrupt
// tail record (the residue of a crash mid-append).
type (
	JobJournal    = service.Journal
	JournalRecord = service.JournalRecord
)

// OpenJobJournal opens (creating if needed) a journal for appending;
// ReplayJobJournal reads one back.
var (
	OpenJobJournal   = service.OpenJournal
	ReplayJobJournal = service.ReplayJournal
	ErrTornJournal   = service.ErrTornJournal
)

// NewServiceHandler builds the rmcrtd HTTP API around a service.
var NewServiceHandler = service.NewHandler

// ErrQueueFull is the typed admission-control rejection.
var ErrQueueFull = service.ErrQueueFull

// MetricsRegistry holds named counters, gauges, and histograms with a
// plain-text exposition format.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty registry.
var NewMetricsRegistry = metrics.NewRegistry

// Boilerflux: the deliverable of the CCMSC target calculation — "the
// heat flux to the surrounding walls" of a boiler. Builds the synthetic
// oxy-coal boiler geometry (hot sooty flame core, tube banks in the
// convective section), solves the incident radiative flux map over each
// wall with backward ray tracing, prints an ASCII rendering of the hot
// side, and writes the divQ field to a UDA-style archive.
//
//	go run ./examples/boilerflux
package main

import (
	"fmt"
	"log"
	"os"

	rmcrt "github.com/uintah-repro/rmcrt"
	"github.com/uintah-repro/rmcrt/internal/uda"
)

func main() {
	const n = 24
	spec := rmcrt.DefaultBoiler()
	dom, g, opts, err := rmcrt.NewBoilerDomain(spec, n)
	if err != nil {
		log.Fatal(err)
	}
	opts.NRays = 48
	lvl := g.Levels[0]

	fmt.Printf("boiler %d^3: flame %gK core, walls %gK, %d tube banks\n\n",
		n, spec.FlameTemp, spec.WallTemp, spec.TubeBanks)

	// Flux maps over all six walls.
	fmt.Println("incident radiative flux (kW/m^2), wall averages:")
	var side *rmcrt.FluxMap
	for _, f := range []rmcrt.WallFace{rmcrt.XMinus, rmcrt.XPlus, rmcrt.YMinus,
		rmcrt.YPlus, rmcrt.ZMinus, rmcrt.ZPlus} {
		fm, err := dom.SolveWallFluxMap(f, &opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wall %-3s mean %8.1f   peak %8.1f\n", f, fm.Mean()/1e3, fm.Max()/1e3)
		if f == rmcrt.XMinus {
			side = fm
		}
	}

	// ASCII rendering of the x- wall (axes: y across, z up): the flame
	// core should glow low in the furnace.
	fmt.Println("\nx- wall flux map (z up, y across; . < * < # by flux):")
	lo, hi := side.Q[0], side.Q[0]
	for _, q := range side.Q {
		if q < lo {
			lo = q
		}
		if q > hi {
			hi = q
		}
	}
	for v := side.NV - 1; v >= 0; v-- { // z from top
		fmt.Print("  ")
		for u := 0; u < side.NU; u++ { // y across
			q := (side.At(u, v) - lo) / (hi - lo + 1e-300)
			switch {
			case q > 0.75:
				fmt.Print("#")
			case q > 0.4:
				fmt.Print("*")
			case q > 0.15:
				fmt.Print("+")
			default:
				fmt.Print(".")
			}
		}
		fmt.Println()
	}

	// Solve divQ over the interior and archive it UDA-style.
	divQ, err := dom.SolveRegion(lvl.IndexBox(), &opts)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "boiler-uda-*")
	if err != nil {
		log.Fatal(err)
	}
	arch, err := uda.Create(dir, "mini boiler")
	if err != nil {
		log.Fatal(err)
	}
	if err := arch.SaveCC(0, "divQ", 0, divQ); err != nil {
		log.Fatal(err)
	}
	back, err := arch.LoadCC(0, "divQ", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\narchived divQ to %s (round-trip check: center %.1f == %.1f kW/m^3)\n",
		dir, divQ.At(rmcrt.IV(n/2, n/2, n/4))/1e3, back.At(rmcrt.IV(n/2, n/2, n/4))/1e3)
}

// Gpuscheduler: drives the full mini-Uintah runtime on one simulated
// Titan node — the DAG task scheduler with staged GPU queues, the GPU
// DataWarehouse with its per-level database, and the wait-free
// communication pool — running the paper's GPU multi-level RMCRT task
// graph end to end, and reports what the level database saved.
//
//	go run ./examples/gpuscheduler
package main

import (
	"fmt"
	"log"

	rmcrt "github.com/uintah-repro/rmcrt"
)

func main() {
	// A 2-level grid at laptop scale: fine 32³ in eight 16³ patches,
	// coarse 8³ radiation mesh (refinement ratio 4).
	g, err := rmcrt.NewGrid(rmcrt.V3(0, 0, 0), rmcrt.V3(1, 1, 1),
		rmcrt.GridSpec{Resolution: rmcrt.IV(8, 8, 8), PatchSize: rmcrt.IV(8, 8, 8)},
		rmcrt.GridSpec{Resolution: rmcrt.IV(32, 32, 32), PatchSize: rmcrt.IV(16, 16, 16)},
	)
	if err != nil {
		log.Fatal(err)
	}

	// One Titan node: 16 worker threads, one K20X-class device.
	sched := rmcrt.NewScheduler(0, 16, g,
		rmcrt.NewDataWarehouse(1), rmcrt.NewDataWarehouse(0), rmcrt.NewComm(1))
	dev := rmcrt.NewDevice(rmcrt.K20XMemory, rmcrt.NewK20X(2.5e8))
	dev.SetRecording(true)
	sched.AttachGPU(dev, rmcrt.NewGPUDataWarehouse(dev))

	opts := rmcrt.DefaultOptions()
	opts.NRays = 24
	solve := &rmcrt.GPURadiationSolve{Grid: g, Opts: opts, Props: rmcrt.FillBenchmark}
	if err := solve.Register(sched); err != nil {
		log.Fatal(err)
	}

	stats, err := sched.Execute()
	if err != nil {
		log.Fatal(err)
	}

	fine := g.Finest()
	fmt.Printf("GPU multi-level RMCRT task graph on one simulated Titan node\n")
	fmt.Printf("  grid: fine 32^3 (8 patches of 16^3), coarse 8^3, RR 4\n")
	fmt.Printf("  tasks run: %d (%d on the GPU through H2D->kernel->D2H queues)\n",
		stats.TasksRun, stats.GPUTasksRun)
	fmt.Printf("  simulated device makespan: %.2f ms, peak device memory: %d bytes\n",
		1e3*stats.DeviceMakespan, stats.DevicePeakMem)

	// The level database (contribution ii): one coarse upload shared by
	// all eight patch tasks.
	gdw := sched.GPUDW
	fmt.Printf("\n  GPU DataWarehouse level database:\n")
	fmt.Printf("    H2D bytes actually copied: %d\n", gdw.H2DBytes())
	fmt.Printf("    PCIe bytes avoided vs per-patch replication: %d\n", gdw.SavedBytes())

	// Show the stream overlap the dual copy engines + concurrent
	// kernels provide.
	events := dev.Events()
	overlapped := 0
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].End {
			overlapped++
		}
	}
	fmt.Printf("    device timeline: %d operations, %d overlapped with a predecessor\n",
		len(events), overlapped)

	// And the answer is real: divQ present for every patch.
	var minQ, maxQ float64
	first := true
	for _, p := range fine.Patches {
		v, err := sched.DW.GetCC(rmcrt.LabelDivQ, p.ID)
		if err != nil {
			log.Fatal(err)
		}
		p.Cells.ForEach(func(c rmcrt.IntVector) {
			q := v.At(c)
			if first || q < minQ {
				minQ = q
			}
			if first || q > maxQ {
				maxQ = q
			}
			first = false
		})
	}
	fmt.Printf("\n  divQ computed for all %d fine cells: range [%.4f, %.4f] W/m^3\n",
		fine.NumCells(), minQ, maxQ)
}

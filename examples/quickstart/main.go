// Quickstart: the smallest possible RMCRT solve through the public API.
//
// It builds the Burns & Christon benchmark (a unit cube of hot
// participating gas inside cold black walls) on a single 25³ mesh,
// computes the divergence of the radiative heat flux in every cell with
// 64 rays per cell, and prints the centerline profile.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	rmcrt "github.com/uintah-repro/rmcrt"
)

func main() {
	const n = 25

	// A ready-made benchmark domain: κ peaked at the center, uniform
	// σT⁴ = 1, cold black walls.
	dom, g, err := rmcrt.NewBenchmarkDomain(n)
	if err != nil {
		log.Fatal(err)
	}
	lvl := g.Levels[0]

	opts := rmcrt.DefaultOptions()
	opts.NRays = 64

	divQ, err := dom.SolveRegion(lvl.IndexBox(), &opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Burns & Christon benchmark, %d^3 cells, %d rays/cell\n", n, opts.NRays)
	fmt.Printf("traced %d rays over %d DDA steps\n\n", dom.Rays.Load(), dom.Steps.Load())
	fmt.Println("     x      divQ  (W/m^3, centerline y=z=0.5)")
	mid := n / 2
	for i := 0; i < n; i++ {
		c := rmcrt.IV(i, mid, mid)
		fmt.Printf("%6.3f  %8.4f\n", lvl.CellCenter(c).X, divQ.At(c))
	}

	// The medium is a net emitter everywhere with cold walls, strongest
	// where κ peaks (the center).
	center := divQ.At(rmcrt.IV(mid, mid, mid))
	corner := divQ.At(rmcrt.IV(0, 0, 0))
	fmt.Printf("\ncenter divQ = %.4f, corner divQ = %.4f (center/corner = %.1fx)\n",
		center, corner, center/corner)
}

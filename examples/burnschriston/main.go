// Burnschriston: the accuracy study behind the paper's §III.C claim
// that the single-level RMCRT "examines the accuracy of the computed
// divergence of the heat flux and shows expected Monte Carlo
// convergence".
//
// The example solves the Burns & Christon benchmark at increasing ray
// counts against a high-ray-count reference, fits the error decay, and
// compares RMCRT with the discrete ordinates (DOM) baseline it
// displaced.
//
//	go run ./examples/burnschriston
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	rmcrt "github.com/uintah-repro/rmcrt"
)

func main() {
	const n = 25
	dom, g, err := rmcrt.NewBenchmarkDomain(n)
	if err != nil {
		log.Fatal(err)
	}
	lvl := g.Levels[0]
	mid := n / 2
	line := rmcrt.Box{Lo: rmcrt.IV(0, mid, mid), Hi: rmcrt.IV(n, mid+1, mid+1)}

	// Reference: 8192 rays/cell on the centerline, independent seed.
	ref := rmcrt.DefaultOptions()
	ref.NRays = 8192
	ref.Seed = 12345
	refV, err := dom.SolveRegion(line, &ref)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Burns & Christon %d^3 — Monte Carlo convergence on the centerline\n\n", n)
	fmt.Println("  rays    L2 error   L2*sqrt(N)   (constant => error ~ N^-1/2)")
	var ns, errs []float64
	for _, nr := range []int{16, 32, 64, 128, 256, 512, 1024} {
		o := rmcrt.DefaultOptions()
		o.NRays = nr
		v, err := dom.SolveRegion(line, &o)
		if err != nil {
			log.Fatal(err)
		}
		var sq float64
		cells := 0
		line.ForEach(func(c rmcrt.IntVector) {
			d := v.At(c) - refV.At(c)
			sq += d * d
			cells++
		})
		l2 := math.Sqrt(sq / float64(cells))
		ns = append(ns, float64(nr))
		errs = append(errs, l2)
		fmt.Printf("%6d  %10.5f  %10.4f\n", nr, l2, l2*math.Sqrt(float64(nr)))
	}
	p := fitExponent(ns, errs)
	fmt.Printf("\n  fitted error ~ N^%.2f (Monte Carlo expects -0.50)\n\n", p)

	// DOM baseline comparison at the domain center.
	prob := &rmcrt.DOMProblem{Level: lvl}
	prob.Abskg, prob.SigmaT4OverPi, prob.CellType = rmcrt.FillBenchmark(lvl, lvl.IndexBox())
	quad, err := rmcrt.Tn(4)
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	res, err := rmcrt.SolveDOM(prob, quad)
	if err != nil {
		log.Fatal(err)
	}
	tDOM := time.Since(t0)

	center := rmcrt.IV(mid, mid, mid)
	fmt.Printf("center-cell divQ:  RMCRT(8192 rays) = %.4f,  DOM %s (%d ordinates, %v) = %.4f\n",
		refV.At(center), quad.Name, quad.NumOrdinates(), tDOM.Round(time.Millisecond), res.DivQ.At(center))
	fmt.Printf("relative difference: %.2f%%\n",
		100*math.Abs(res.DivQ.At(center)-refV.At(center))/refV.At(center))
	fmt.Println("\nDOM solves one upwind sweep per ordinate per radiation solve (the")
	fmt.Println("sparse-solve cost the paper cites); RMCRT's rays are embarrassingly")
	fmt.Println("parallel and carry no angular discretization error.")
}

// fitExponent fits err ~ c*N^p by least squares in log space.
func fitExponent(ns, errs []float64) float64 {
	var sx, sy, sxx, sxy float64
	n := 0
	for i := range ns {
		if errs[i] <= 0 {
			continue
		}
		x, y := math.Log(ns[i]), math.Log(errs[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	fn := float64(n)
	return (fn*sxy - sx*sy) / (fn*sxx - sx*sx)
}

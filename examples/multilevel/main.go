// Multilevel: the paper's 2-level AMR RMCRT configuration at laptop
// scale, showing what the mesh-refinement scheme buys.
//
// Rays from each fine patch march the *fine* mesh only inside the
// patch's region of interest (patch + halo) and a 4× coarser mesh
// everywhere else. The example solves the same benchmark both ways —
// single fine level vs. 2-level — and reports the accuracy of the AMR
// answer against the single-level one along with the data-volume
// savings that make the paper's communication scalable.
//
//	go run ./examples/multilevel
package main

import (
	"fmt"
	"log"
	"time"

	rmcrt "github.com/uintah-repro/rmcrt"
)

func main() {
	const (
		fineN  = 48
		patchN = 16
		rr     = 4
		halo   = 4
		rays   = 64
	)

	opts := rmcrt.DefaultOptions()
	opts.NRays = rays
	opts.HaloCells = halo

	// --- Single fine level (the pre-AMR design) ----------------------
	single, gs, err := rmcrt.NewBenchmarkDomain(fineN)
	if err != nil {
		log.Fatal(err)
	}
	fineLvl := gs.Levels[0]
	t0 := time.Now()
	ref, err := single.SolveRegion(fineLvl.IndexBox(), &opts)
	if err != nil {
		log.Fatal(err)
	}
	tSingle := time.Since(t0)

	// --- 2-level AMR (the paper's design) -----------------------------
	g, mkDomain, err := rmcrt.NewMultiLevelBenchmark(fineN, patchN, rr, halo)
	if err != nil {
		log.Fatal(err)
	}
	fine := g.Levels[1]
	t0 = time.Now()
	var worst, sum float64
	var cells int
	var mlSteps int64
	for _, p := range fine.Patches {
		dom, err := mkDomain(p)
		if err != nil {
			log.Fatal(err)
		}
		out, err := dom.SolveRegion(p.Cells, &opts)
		if err != nil {
			log.Fatal(err)
		}
		mlSteps += dom.Steps.Load()
		p.Cells.ForEach(func(c rmcrt.IntVector) {
			rel := relErr(out.At(c), ref.At(c))
			sum += rel
			cells++
			if rel > worst {
				worst = rel
			}
		})
	}
	tMulti := time.Since(t0)

	fmt.Printf("2-level AMR RMCRT vs single fine level (%d^3, %d rays/cell)\n", fineN, rays)
	fmt.Printf("  fine patches: %d of %d^3 cells, coarse level %d^3 (RR %d), halo %d\n\n",
		len(fine.Patches), patchN, fineN/rr, rr, halo)
	fmt.Printf("  accuracy: mean |rel diff| = %.3f%%, worst = %.2f%%\n",
		100*sum/float64(cells), 100*worst)
	fmt.Printf("  wall time: single %v, 2-level %v\n\n", tSingle.Round(time.Millisecond), tMulti.Round(time.Millisecond))
	_ = mlSteps

	// What each node must hold / receive for local tracing:
	fineBytes := int64(fineN*fineN*fineN) * 8 * 3
	coarseN := fineN / rr
	coarseBytes := int64(coarseN*coarseN*coarseN) * 8 * 3
	windowBytes := int64((patchN+2*halo)*(patchN+2*halo)*(patchN+2*halo)) * 8 * 3
	fmt.Printf("  single-level replication per node: %10d bytes (whole fine level x 3 props)\n", fineBytes)
	fmt.Printf("  2-level data per patch:            %10d bytes (coarse copy + fine window)\n", coarseBytes+windowBytes)
	fmt.Printf("  reduction: %.0fx — this is what makes the all-to-all scale (paper SIII)\n",
		float64(fineBytes)/float64(coarseBytes+windowBytes))
}

func relErr(a, b float64) float64 {
	d := b
	if d < 0 {
		d = -d
	}
	if d < 1e-12 {
		d = 1e-12
	}
	e := a - b
	if e < 0 {
		e = -e
	}
	return e / d
}
